//! Wall-clock attribution of engine time to simulation phases.
//!
//! The engine dispatches one event at a time, so the wall-clock interval
//! between two consecutive `on_event_dispatched` hooks is the cost of
//! processing the *earlier* event — its MAC/PHY handling, routing upcalls
//! and deferred-work drain. [`PhaseProfiler::tick`] exploits that: it
//! attributes each inter-dispatch delta to the phase of the previous
//! event's kind. Mobility-trace generation happens before the engine runs
//! and is timed externally via [`PhaseProfiler::add_external`].

use std::time::{Duration, Instant};

use cavenet_net::EventKind;

use crate::json::Json;

/// A simulation phase that wall-clock time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Mobility trace generation (the BA side: CA stepping + sampling).
    Mobility,
    /// PHY events: receptions starting/ending, transmissions ending.
    Phy,
    /// MAC timers (DIFS, backoff, ACK timeout, NAV).
    Mac,
    /// Routing-protocol timers.
    Routing,
    /// Application timers.
    App,
    /// Fault injection events.
    Fault,
    /// Sharded candidate-kernel work (per-arc query fan-out), timed by the
    /// shard workers and attributed via [`PhaseProfiler::add_external`].
    ShardKernel,
    /// Sharded position resampling (per-arc grid rebuilds), timed by the
    /// shard workers and attributed via [`PhaseProfiler::add_external`].
    ShardResample,
    /// Event kinds this crate does not know (future engine additions).
    Other,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 9;

    /// All phases, in declaration (= report) order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Mobility,
        Phase::Phy,
        Phase::Mac,
        Phase::Routing,
        Phase::App,
        Phase::Fault,
        Phase::ShardKernel,
        Phase::ShardResample,
        Phase::Other,
    ];

    /// Stable snake_case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Mobility => "mobility",
            Phase::Phy => "phy",
            Phase::Mac => "mac",
            Phase::Routing => "routing",
            Phase::App => "app",
            Phase::Fault => "fault",
            Phase::ShardKernel => "shard_kernel",
            Phase::ShardResample => "shard_resample",
            Phase::Other => "other",
        }
    }

    /// The phase an engine event belongs to.
    pub fn of(kind: EventKind) -> Phase {
        match kind {
            EventKind::RxStart | EventKind::RxEnd | EventKind::TxEnd => Phase::Phy,
            EventKind::MacTimer => Phase::Mac,
            EventKind::RoutingTimer => Phase::Routing,
            EventKind::AppTimer => Phase::App,
            EventKind::Fault => Phase::Fault,
            _ => Phase::Other,
        }
    }
}

/// Accumulates per-phase wall-clock totals and event counts.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfiler {
    totals: [Duration; Phase::COUNT],
    counts: [u64; Phase::COUNT],
    open: Option<(Instant, Phase)>,
}

impl PhaseProfiler {
    /// A fresh profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Called at each event dispatch: closes the interval opened by the
    /// previous dispatch (charging it to that event's phase) and opens a
    /// new one for `kind`.
    pub fn tick(&mut self, kind: EventKind) {
        let now = Instant::now();
        if let Some((opened, phase)) = self.open {
            self.totals[phase as usize] += now - opened;
            self.counts[phase as usize] += 1;
        }
        self.open = Some((now, Phase::of(kind)));
    }

    /// Close the final open interval. Call once after the run; further
    /// `tick`s start fresh.
    pub fn finish(&mut self) {
        if let Some((opened, phase)) = self.open.take() {
            self.totals[phase as usize] += opened.elapsed();
            self.counts[phase as usize] += 1;
        }
    }

    /// Attribute externally measured time (e.g. mobility-trace
    /// generation) to a phase.
    pub fn add_external(&mut self, phase: Phase, elapsed: Duration) {
        self.totals[phase as usize] += elapsed;
    }

    /// Total wall-clock charged to a phase.
    pub fn total(&self, phase: Phase) -> Duration {
        self.totals[phase as usize]
    }

    /// Events charged to a phase.
    pub fn count(&self, phase: Phase) -> u64 {
        self.counts[phase as usize]
    }

    /// Wall-clock across all phases.
    pub fn grand_total(&self) -> Duration {
        self.totals.iter().sum()
    }

    /// Per-phase breakdown as JSON: seconds, event count and share of the
    /// profiled total, in declaration order.
    pub fn to_json(&self) -> Json {
        let grand = self.grand_total().as_secs_f64();
        Json::Obj(
            Phase::ALL
                .iter()
                .map(|&p| {
                    let secs = self.total(p).as_secs_f64();
                    (
                        p.name().to_string(),
                        Json::Obj(vec![
                            ("seconds".into(), Json::Num(secs)),
                            ("events".into(), Json::num_u64(self.count(p))),
                            (
                                "share".into(),
                                Json::Num(if grand > 0.0 { secs / grand } else { 0.0 }),
                            ),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_kind_maps_to_a_phase() {
        for kind in [
            EventKind::RxStart,
            EventKind::RxEnd,
            EventKind::TxEnd,
            EventKind::MacTimer,
            EventKind::RoutingTimer,
            EventKind::AppTimer,
            EventKind::Fault,
        ] {
            assert_ne!(Phase::of(kind), Phase::Other);
        }
    }

    #[test]
    fn tick_charges_the_previous_event() {
        let mut p = PhaseProfiler::new();
        p.tick(EventKind::MacTimer);
        p.tick(EventKind::AppTimer); // closes the MacTimer interval
        assert_eq!(p.count(Phase::Mac), 1);
        assert_eq!(p.count(Phase::App), 0);
        p.finish();
        assert_eq!(p.count(Phase::App), 1);
        assert!(p.grand_total() >= p.total(Phase::Mac));
    }

    #[test]
    fn external_time_is_attributed() {
        let mut p = PhaseProfiler::new();
        p.add_external(Phase::Mobility, Duration::from_millis(5));
        assert_eq!(p.total(Phase::Mobility), Duration::from_millis(5));
        assert_eq!(p.count(Phase::Mobility), 0);
    }
}
