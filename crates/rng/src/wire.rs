//! Minimal serde-free binary encoding for checkpoint snapshots.
//!
//! Every multi-byte integer is little-endian and fixed-width; floats are
//! serialized as their IEEE-754 bit patterns so round-trips are bit-exact.
//! There is no self-description: reader and writer must agree on the layout,
//! which is what the snapshot schema version is for. The encoder lives here
//! (rather than in `cavenet-net`) because every crate in the workspace —
//! including `cavenet-ca`, which does not depend on the network stack —
//! captures state through it.

use std::fmt;

/// Error raised while decoding a checkpoint byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended before the requested value was complete.
    Truncated {
        /// Bytes needed to finish the read.
        need: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// A decoded value was structurally impossible (bad enum tag,
    /// out-of-range index, inconsistent length).
    Malformed {
        /// What was being decoded.
        what: &'static str,
        /// The offending raw value.
        value: u64,
    },
    /// The stream decoded cleanly but left unread trailing bytes.
    TrailingBytes {
        /// Number of bytes left over.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated stream: need {need} bytes, have {have}")
            }
            WireError::Malformed { what, value } => {
                write!(f, "malformed {what}: {value:#x}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} unread trailing bytes")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only binary encoder.
#[derive(Debug, Default, Clone)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (bit-exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Append a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Cursor-based binary decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail with [`WireError::TrailingBytes`] unless the stream is fully
    /// consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            extra => Err(WireError::TrailingBytes { extra }),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a `bool`; any byte other than 0 or 1 is malformed.
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(WireError::Malformed {
                what: "bool",
                value: u64::from(v),
            }),
        }
    }

    /// Read a `usize` stored as `u64`; fails if it does not fit.
    pub fn get_usize(&mut self) -> Result<usize, WireError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| WireError::Malformed {
            what: "usize",
            value: v,
        })
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.get_usize()?;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, WireError> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes).map_err(|e| WireError::Malformed {
            what: "utf-8 string",
            value: e.valid_up_to() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_type() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u16(513);
        w.put_u32(70_000);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_f64(-0.125);
        w.put_bool(true);
        w.put_usize(99);
        w.put_bytes(b"abc");
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 513);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), -0.125);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_usize().unwrap(), 99);
        assert_eq!(r.get_bytes().unwrap(), b"abc");
        assert_eq!(r.get_str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for v in [f64::NAN, f64::INFINITY, -0.0, 1.0e-300] {
            let mut w = WireWriter::new();
            w.put_f64(v);
            let bytes = w.into_bytes();
            let got = WireReader::new(&bytes).get_f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncation_is_typed() {
        let mut w = WireWriter::new();
        w.put_u64(5);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes[..4]);
        assert!(matches!(
            r.get_u64(),
            Err(WireError::Truncated { need: 8, have: 4 })
        ));
    }

    #[test]
    fn bad_bool_is_typed() {
        let mut r = WireReader::new(&[3]);
        assert!(matches!(
            r.get_bool(),
            Err(WireError::Malformed { what: "bool", .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_typed() {
        let r = WireReader::new(&[0, 1]);
        assert!(matches!(
            r.finish(),
            Err(WireError::TrailingBytes { extra: 2 })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_typed() {
        let mut w = WireWriter::new();
        w.put_u64(1 << 40);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.get_bytes(), Err(WireError::Truncated { .. })));
    }
}
