//! Vendored deterministic PRNG for the CAVENET workspace.
//!
//! Every stochastic component of the simulator (MAC backoff, CA slow-down,
//! routing jitter, shadowing, mobility) draws from [`SimRng`], a splitmix64
//! generator with a fixed, documented sampling discipline. The workspace
//! deliberately does **not** use an external RNG crate for simulation state:
//! the golden-digest conformance suite (`tests/conformance.rs`) commits
//! 64-bit digests of entire event streams, and those are only meaningful if
//! the byte-exact sequence of random draws is part of this repository's
//! contract. `rand`'s `StdRng` explicitly disclaims cross-version stream
//! stability; splitmix64 is five lines of arithmetic that will never change.
//!
//! The sampling discipline (one `next_u64` per sample, modulo reduction for
//! integer ranges, 53-bit mantissa division for floats) is simple rather
//! than statistically perfect — modulo reduction has bias `< span/2^64`,
//! which is irrelevant at simulation scales but makes every draw exactly
//! reproducible from the seed alone, in any build, on any platform.
//!
//! ```
//! use cavenet_rng::SimRng;
//!
//! let mut rng = SimRng::seed_from_u64(42);
//! let a: u64 = rng.gen_range(0..100);
//! let b: u64 = SimRng::seed_from_u64(42).gen_range(0..100);
//! assert_eq!(a, b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fnv;
pub mod wire;

/// Map 64 random bits to a uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    ((bits >> 11) as f64) / ((1u64 << 53) as f64)
}

/// A value samplable uniformly from all 64 random bits ("standard"
/// distribution): integers take the low bits, floats are uniform in
/// `[0, 1)`, booleans take the lowest bit.
pub trait SampleStandard: Sized {
    /// Draw one value from `rng`.
    fn sample(rng: &mut SimRng) -> Self;
}

/// A range samplable uniformly; implemented for half-open and inclusive
/// integer and float ranges.
pub trait SampleRange<T>: Sized {
    /// Draw one value in the range from `rng`.
    ///
    /// Panics if the range is empty.
    fn sample_single(self, rng: &mut SimRng) -> T;
}

/// Deterministic splitmix64 generator (Steele, Lea & Flood 2014).
///
/// The stream is a pure function of the seed: state advances by the golden
/// 64-bit Weyl constant and each output is a finalizing hash of the state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Seed the generator. The seed is xor-folded with a fixed constant so
    /// that seed 0 does not start the Weyl sequence at 0.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    /// The raw generator state, for checkpointing. Restoring the state via
    /// [`SimRng::from_state`] continues the stream bit-identically.
    #[inline]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuild a generator from a previously captured [`SimRng::state`].
    ///
    /// Unlike [`SimRng::seed_from_u64`] this applies no seed folding: the
    /// argument is the exact internal state, so the restored generator emits
    /// the same continuation of the stream the captured one would have.
    #[inline]
    pub fn from_state(state: u64) -> Self {
        SimRng { state }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A standard-distribution sample: uniform `[0, 1)` for floats, all 64
    /// bits (truncated) for integers, the lowest bit for `bool`.
    #[inline]
    pub fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range` (one `next_u64` per call).
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl SampleStandard for f64 {
    #[inline]
    fn sample(rng: &mut SimRng) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl SampleStandard for f32 {
    #[inline]
    fn sample(rng: &mut SimRng) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl SampleStandard for bool {
    #[inline]
    fn sample(rng: &mut SimRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! std_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            #[inline]
            fn sample(rng: &mut SimRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
std_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single(self, rng: &mut SimRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single(self, rng: &mut SimRng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single(self, rng: &mut SimRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let f = unit_f64(rng.next_u64());
                let v = self.start as f64 + f * (self.end as f64 - self.start as f64);
                let v = v as $t;
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single(self, rng: &mut SimRng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let f = unit_f64(rng.next_u64());
                (lo as f64 + f * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}
float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn splitmix64_reference_vector() {
        // Published splitmix64 test vector: raw state 1234567 produces this
        // sequence (Vigna's reference implementation). Our seeding xors a
        // constant, so reconstruct the raw state through the public API.
        let mut rng = SimRng::seed_from_u64(1234567 ^ 0x5DEE_CE66_D1CE_4E5B);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SimRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = SimRng::seed_from_u64(6);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "heads {heads}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = SimRng::seed_from_u64(0).gen_range(5..5u32);
    }
}
