//! The workspace's one FNV-1a implementation.
//!
//! Three subsystems fingerprint byte streams with 64-bit FNV-1a: the
//! conformance testkit's golden digests, the telemetry run manifests, and
//! the checkpoint snapshot section hashes. They must all use the *same*
//! constants and fold order — the committed golden fixtures are only
//! meaningful if the hash is part of the repository's contract — so the
//! implementation lives here, in the lowest crate of the workspace, and
//! everything else re-exports or wraps it.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One-shot 64-bit FNV-1a over a byte string.
#[inline]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Incremental 64-bit FNV-1a hasher.
///
/// Byte-stream equivalent to [`fnv64`]: feeding the same bytes in any
/// chunking produces the same hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    #[inline]
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// A hasher resumed from a previously captured [`Fnv64::finish`] value.
    ///
    /// FNV-1a's running state *is* its output, so a digest can be
    /// checkpointed and continued across processes.
    #[inline]
    pub fn from_state(state: u64) -> Self {
        Fnv64 { state }
    }

    /// Fold `bytes` into the hash.
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold a single byte into the hash.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.state ^= u64::from(b);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// The current hash value. The hasher remains usable.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        // FNV-1a("a") — standard test vector.
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        // FNV-1a("foobar") — standard test vector.
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn chunking_is_irrelevant() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"");
        h.write_u8(b'b');
        h.write(b"ar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }

    #[test]
    fn resumes_from_state() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        let mut resumed = Fnv64::from_state(h.finish());
        resumed.write(b"bar");
        assert_eq!(resumed.finish(), fnv64(b"foobar"));
    }
}
