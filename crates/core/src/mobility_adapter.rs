//! Adapts a BA-block mobility trace to the CPS-block position interface —
//! the in-process equivalent of the paper's ns-2 trace file hand-off.

use std::time::Duration;

use cavenet_mobility::MobilityTrace;
use cavenet_net::{MobilityModel, PositionEpoch, SimTime};

/// A [`MobilityModel`] backed by a sampled [`MobilityTrace`].
///
/// Positions between samples are linearly interpolated; before the first
/// and after the last sample they clamp (nodes park at the trace edges).
///
/// With [`TraceMobility::quantized`], the model declares piecewise-constant
/// [`PositionEpoch::Step`] epochs of the given width: the simulator then
/// samples every position once per epoch (and rebuilds its neighbor grid
/// once per epoch) instead of once per event time — the natural choice when
/// the quantum matches the underlying CA step, since the trace only holds
/// new information once per step anyway.
#[derive(Debug, Clone)]
pub struct TraceMobility {
    trace: MobilityTrace,
    quantum: Option<Duration>,
    /// Displacement-rate bound over the whole trace, computed once at
    /// construction ([`MobilityTrace::max_speed`]); `None` when a teleport
    /// makes the rate unbounded.
    max_speed: Option<f64>,
}

impl TraceMobility {
    /// Wrap a trace with exact (continuous) position resolution.
    pub fn new(trace: MobilityTrace) -> Self {
        let max_speed = trace.max_speed();
        TraceMobility {
            trace,
            quantum: None,
            max_speed,
        }
    }

    /// Wrap a trace, declaring positions constant within steps of width
    /// `quantum` (see the type-level docs). A zero quantum behaves like
    /// [`TraceMobility::new`].
    pub fn quantized(trace: MobilityTrace, quantum: Duration) -> Self {
        let max_speed = trace.max_speed();
        TraceMobility {
            trace,
            quantum: (!quantum.is_zero()).then_some(quantum),
            max_speed,
        }
    }

    /// The wrapped trace.
    pub fn trace(&self) -> &MobilityTrace {
        &self.trace
    }

    /// The epoch quantum, if positions are step-quantized.
    pub fn quantum(&self) -> Option<Duration> {
        self.quantum
    }

    /// Fallback when `position_at` fails for `index` (out-of-range id or a
    /// trajectory with no samples): park the node on the nearest node id
    /// that does resolve, rather than conjuring a ghost station at the
    /// origin that would corrupt connectivity.
    fn nearest_valid_position(&self, index: usize, t: f64) -> (f64, f64) {
        let n = self.trace.node_count();
        if n == 0 {
            return (0.0, 0.0);
        }
        // Out-of-range ids first clamp to the last trajectory, then the
        // search widens over ids that might still resolve.
        let anchor = index.min(n - 1);
        for step in 0..=n {
            let below = anchor.checked_sub(step);
            let above = (anchor + step < n).then_some(anchor + step);
            for cand in [below, above].into_iter().flatten() {
                if let Ok(p) = self.trace.position_at(cand, t) {
                    return (p.x, p.y);
                }
            }
        }
        (0.0, 0.0)
    }
}

impl From<MobilityTrace> for TraceMobility {
    fn from(trace: MobilityTrace) -> Self {
        TraceMobility::new(trace)
    }
}

impl MobilityModel for TraceMobility {
    fn position(&self, index: usize, t: SimTime) -> (f64, f64) {
        match self.trace.position_at(index, t.as_secs_f64()) {
            Ok(p) => (p.x, p.y),
            Err(err) => {
                debug_assert!(
                    false,
                    "mobility trace lookup failed for node {index} at t={}s: {err:?}",
                    t.as_secs_f64()
                );
                self.nearest_valid_position(index, t.as_secs_f64())
            }
        }
    }

    fn node_count(&self) -> usize {
        self.trace.node_count()
    }

    fn epoch(&self, t: SimTime) -> PositionEpoch {
        match self.quantum {
            None => PositionEpoch::Continuous,
            Some(q) => {
                let q_ns = q.as_nanos().min(u64::MAX as u128) as u64;
                let id = t.as_nanos() / q_ns;
                PositionEpoch::Step {
                    id,
                    start: SimTime::from_nanos(id * q_ns),
                }
            }
        }
    }

    fn max_speed(&self) -> Option<f64> {
        self.max_speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cavenet_ca::{Boundary, Lane, NasParams};
    use cavenet_mobility::{LaneGeometry, NodeTrajectory, Point2, TraceGenerator, TraceSample};

    fn trace() -> MobilityTrace {
        let params = NasParams::builder()
            .length(400)
            .density(0.075)
            .build()
            .unwrap();
        let lane = Lane::with_uniform_placement(params, Boundary::Closed, 1).unwrap();
        TraceGenerator::new(LaneGeometry::ring_circle(3000.0))
            .steps(100)
            .generate(lane)
    }

    #[test]
    fn node_count_matches_trace() {
        let m = TraceMobility::new(trace());
        assert_eq!(m.node_count(), 30);
    }

    #[test]
    fn positions_move_over_time() {
        let m = TraceMobility::new(trace());
        let a = m.position(0, SimTime::from_secs(10));
        let b = m.position(0, SimTime::from_secs(60));
        let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        assert!(d > 1.0, "vehicle should have moved, got {d} m");
    }

    #[test]
    fn positions_clamp_past_trace_end() {
        let m = TraceMobility::new(trace());
        let a = m.position(3, SimTime::from_secs(100));
        let b = m.position(3, SimTime::from_secs(1000));
        assert_eq!(a, b);
    }

    #[test]
    fn interpolation_is_smooth() {
        let m = TraceMobility::new(trace());
        // Positions a half-second apart differ by at most vmax·0.5 ≈ 19 m.
        let a = m.position(5, SimTime::from_millis(10_000));
        let b = m.position(5, SimTime::from_millis(10_500));
        let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        assert!(d <= 19.0, "interpolated step too large: {d} m");
    }

    #[test]
    fn default_epoch_is_continuous() {
        let m = TraceMobility::new(trace());
        assert_eq!(m.quantum(), None);
        assert_eq!(m.epoch(SimTime::from_secs(3)), PositionEpoch::Continuous);
    }

    #[test]
    fn quantized_trace_reports_step_epochs() {
        let m = TraceMobility::quantized(trace(), Duration::from_secs(1));
        assert_eq!(
            m.epoch(SimTime::from_millis(2_500)),
            PositionEpoch::Step {
                id: 2,
                start: SimTime::from_secs(2)
            }
        );
        // Epoch boundaries are half-open: t = 3 s starts epoch 3.
        assert_eq!(
            m.epoch(SimTime::from_secs(3)),
            PositionEpoch::Step {
                id: 3,
                start: SimTime::from_secs(3)
            }
        );
        // A zero quantum degrades to continuous sampling.
        let z = TraceMobility::quantized(trace(), Duration::ZERO);
        assert_eq!(z.epoch(SimTime::from_secs(1)), PositionEpoch::Continuous);
    }

    #[test]
    fn trace_mobility_reports_finite_speed_bound() {
        let m = TraceMobility::new(trace());
        let v = m.max_speed().expect("closed-ring trace has no teleports");
        // NaS vehicles top out at vmax cells per step; the embedded bound
        // must be positive (they move) and physically sane.
        assert!(v > 0.0 && v < 60.0, "CA ring speed bound {v} m/s");
        // The bound really does cap observed displacement over an interval.
        let a = m.position(5, SimTime::from_millis(10_000));
        let b = m.position(5, SimTime::from_millis(10_500));
        let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        assert!(d <= v * 0.5 + 1e-9, "moved {d} m in 0.5 s, bound {v} m/s");
    }

    /// A trace whose node 1 has no samples (e.g. a malformed hand-off).
    fn trace_with_gap() -> MobilityTrace {
        let sample = |time: f64, x: f64| TraceSample {
            time,
            position: Point2::new(x, 0.0),
            speed: 0.0,
            teleport: false,
        };
        MobilityTrace::from_trajectories(vec![
            NodeTrajectory::new(vec![sample(0.0, 10.0), sample(1.0, 20.0)]).unwrap(),
            NodeTrajectory::default(),
            NodeTrajectory::new(vec![sample(0.0, 90.0), sample(1.0, 80.0)]).unwrap(),
        ])
    }

    #[test]
    fn ghost_node_clamps_to_nearest_valid_trajectory() {
        let m = TraceMobility::new(trace_with_gap());
        // Node 1 has no samples; the nearest resolvable id is node 0.
        assert_eq!(m.nearest_valid_position(1, 0.0), (10.0, 0.0));
        // Out-of-range ids clamp to the last valid trajectory.
        assert_eq!(m.nearest_valid_position(7, 0.0), (90.0, 0.0));
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "mobility trace lookup failed")
    )]
    fn ghost_node_position_asserts_in_debug_builds() {
        let m = TraceMobility::new(trace_with_gap());
        // In release builds this exercises the clamping fallback instead.
        assert_eq!(m.position(1, SimTime::ZERO), (10.0, 0.0));
    }
}
