//! Adapts a BA-block mobility trace to the CPS-block position interface —
//! the in-process equivalent of the paper's ns-2 trace file hand-off.

use cavenet_mobility::MobilityTrace;
use cavenet_net::{MobilityModel, SimTime};

/// A [`MobilityModel`] backed by a sampled [`MobilityTrace`].
///
/// Positions between samples are linearly interpolated; before the first
/// and after the last sample they clamp (nodes park at the trace edges).
#[derive(Debug, Clone)]
pub struct TraceMobility {
    trace: MobilityTrace,
}

impl TraceMobility {
    /// Wrap a trace.
    pub fn new(trace: MobilityTrace) -> Self {
        TraceMobility { trace }
    }

    /// The wrapped trace.
    pub fn trace(&self) -> &MobilityTrace {
        &self.trace
    }
}

impl From<MobilityTrace> for TraceMobility {
    fn from(trace: MobilityTrace) -> Self {
        TraceMobility::new(trace)
    }
}

impl MobilityModel for TraceMobility {
    fn position(&self, index: usize, t: SimTime) -> (f64, f64) {
        match self.trace.position_at(index, t.as_secs_f64()) {
            Ok(p) => (p.x, p.y),
            Err(_) => (0.0, 0.0),
        }
    }

    fn node_count(&self) -> usize {
        self.trace.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cavenet_ca::{Boundary, Lane, NasParams};
    use cavenet_mobility::{LaneGeometry, TraceGenerator};

    fn trace() -> MobilityTrace {
        let params = NasParams::builder().length(400).density(0.075).build().unwrap();
        let lane = Lane::with_uniform_placement(params, Boundary::Closed, 1).unwrap();
        TraceGenerator::new(LaneGeometry::ring_circle(3000.0))
            .steps(100)
            .generate(lane)
    }

    #[test]
    fn node_count_matches_trace() {
        let m = TraceMobility::new(trace());
        assert_eq!(m.node_count(), 30);
    }

    #[test]
    fn positions_move_over_time() {
        let m = TraceMobility::new(trace());
        let a = m.position(0, SimTime::from_secs(10));
        let b = m.position(0, SimTime::from_secs(60));
        let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        assert!(d > 1.0, "vehicle should have moved, got {d} m");
    }

    #[test]
    fn positions_clamp_past_trace_end() {
        let m = TraceMobility::new(trace());
        let a = m.position(3, SimTime::from_secs(100));
        let b = m.position(3, SimTime::from_secs(1000));
        assert_eq!(a, b);
    }

    #[test]
    fn interpolation_is_smooth() {
        let m = TraceMobility::new(trace());
        // Positions a half-second apart differ by at most vmax·0.5 ≈ 19 m.
        let a = m.position(5, SimTime::from_millis(10_000));
        let b = m.position(5, SimTime::from_millis(10_500));
        let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        assert!(d <= 19.0, "interpolated step too large: {d} m");
    }
}
