//! Running a scenario end-to-end and collecting the paper's metrics.

use std::rc::Rc;
use std::time::Duration;

use cavenet_fluid::{FluidConfig, FluidEngine, FluidFlow, RouteDiscipline};
use cavenet_net::{
    DropCounts, ExactBackend, Fidelity, FlowId, GlobalStats, NodeId, NoopObserver, ScenarioConfig,
    SimObserver, SimTime, Simulator,
};
use cavenet_traffic::{CbrSink, CbrSource, FlowMetrics, TrafficRecorder};

use crate::{Protocol, Scenario, ScenarioError, TraceMobility};

/// The fluid backend's abstraction of each routing protocol: forwarding
/// discipline, periodic control load per node (packets/s) and control
/// payload size. Reactive protocols contribute their HELLO beacons;
/// proactive ones add their periodic topology/table traffic; flooding has
/// no control plane at all.
fn fluid_routing_model(p: Protocol) -> (RouteDiscipline, f64, u32) {
    match p {
        Protocol::Flooding => (RouteDiscipline::Flood, 0.0, 0),
        // 1 Hz HELLO (Table 1).
        Protocol::Aodv | Protocol::Dymo => (RouteDiscipline::Unicast, 1.0, 48),
        // 1 Hz HELLO + TC every 2 s, MPR-forwarded.
        Protocol::Olsr | Protocol::OlsrEtx => (RouteDiscipline::Unicast, 1.5, 60),
        // Periodic full-table updates.
        Protocol::Dsdv => (RouteDiscipline::Unicast, 1.0, 64),
    }
}

/// Per-sender outcome of an experiment.
#[derive(Debug, Clone)]
pub struct SenderReport {
    /// Sender node id.
    pub sender: u32,
    /// Flow-level metrics (PDR, delay, goodput).
    pub metrics: FlowMetrics,
    /// Time-binned goodput in bits/second (bin = 1 s) over the whole run —
    /// one Z-slice of the paper's Figs. 8–10.
    pub goodput_series: Vec<f64>,
}

/// The complete outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Which protocol ran.
    pub protocol: Protocol,
    /// Simulated duration.
    pub duration: Duration,
    /// One report per configured sender, in sender order.
    pub senders: Vec<SenderReport>,
    /// Total routing control packets sent network-wide.
    pub control_packets: u64,
    /// Total routing control bytes sent network-wide.
    pub control_bytes: u64,
    /// Total data packets forwarded by intermediate nodes.
    pub data_forwarded: u64,
    /// Engine/channel counters.
    pub global: GlobalStats,
    /// Network-wide data-packet drops, broken down by terminal reason.
    pub drops: DropCounts,
}

impl ExperimentResult {
    /// PDR of one sender's flow.
    pub fn pdr_of_sender(&self, sender: u32) -> Option<f64> {
        self.senders
            .iter()
            .find(|s| s.sender == sender)
            .and_then(|s| s.metrics.pdr())
    }

    /// Mean PDR across all senders that sent anything.
    pub fn mean_pdr(&self) -> f64 {
        let pdrs: Vec<f64> = self
            .senders
            .iter()
            .filter_map(|s| s.metrics.pdr())
            .collect();
        if pdrs.is_empty() {
            0.0
        } else {
            pdrs.iter().sum::<f64>() / pdrs.len() as f64
        }
    }

    /// Mean end-to-end delay across all delivered packets, if any.
    pub fn mean_delay(&self) -> Option<Duration> {
        let mut total = Duration::ZERO;
        let mut n = 0u32;
        for s in &self.senders {
            if let Some(d) = s.metrics.mean_delay {
                total += d * s.metrics.received as u32;
                n += s.metrics.received as u32;
            }
        }
        if n == 0 {
            None
        } else {
            Some(total / n)
        }
    }

    /// Worst route-acquisition delay across all flows: the maximum
    /// end-to-end delay of any delivered packet, dominated by packets
    /// buffered during route (re)discovery.
    pub fn max_delay(&self) -> Option<Duration> {
        self.senders
            .iter()
            .filter_map(|s| s.metrics.max_delay)
            .max()
    }

    /// Peak of any sender's binned goodput (the spike height in Fig. 8).
    pub fn peak_goodput_bps(&self) -> f64 {
        self.senders
            .iter()
            .flat_map(|s| s.goodput_series.iter().copied())
            .fold(0.0, f64::max)
    }

    /// Sum of unique packets received across all senders.
    pub fn total_received(&self) -> u64 {
        self.senders.iter().map(|s| s.metrics.received).sum()
    }

    /// Sum of packets sent across all senders.
    pub fn total_sent(&self) -> u64 {
        self.senders.iter().map(|s| s.metrics.sent).sum()
    }

    /// Routing overhead: control packets per delivered data packet
    /// (paper §V names routing overhead as future-work metric).
    pub fn overhead_per_delivery(&self) -> f64 {
        let recv = self.total_received();
        if recv == 0 {
            self.control_packets as f64
        } else {
            self.control_packets as f64 / recv as f64
        }
    }
}

/// Runs a [`Scenario`] through the full BA → CPS pipeline.
#[derive(Debug, Clone)]
pub struct Experiment {
    scenario: Scenario,
}

impl Experiment {
    /// Prepare an experiment.
    pub fn new(scenario: Scenario) -> Self {
        Experiment { scenario }
    }

    /// The scenario to be run.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Generate mobility, run the scenario under its configured
    /// [`Fidelity`] and collect metrics: the exact per-frame engine for
    /// [`Fidelity::Exact`], the flow-level fluid backend for
    /// [`Fidelity::Fluid`].
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] when the scenario is inconsistent or its
    /// mobility model cannot be built.
    pub fn run(&self) -> Result<ExperimentResult, ScenarioError> {
        match self.scenario.fidelity {
            Fidelity::Fluid => self.run_fluid().map(|(r, _)| r),
            _ => self.run_with_observer(NoopObserver).map(|(r, _)| r),
        }
    }

    /// Like [`run`](Self::run), but attaches a [`SimObserver`] to the engine
    /// and also returns the finished simulator, giving callers access to the
    /// observer ([`Simulator::into_observer`]), per-node statistics and
    /// routing-protocol state after the run. This is the entry point the
    /// conformance testkit uses for invariant checking and golden digests.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] when the scenario is inconsistent or its
    /// mobility model cannot be built.
    pub fn run_with_observer<O: SimObserver>(
        &self,
        observer: O,
    ) -> Result<(ExperimentResult, Simulator<O>), ScenarioError> {
        let (mut sim, recorder) = self.build_sim(observer)?;
        sim.run_until(cavenet_net::SimTime::from_secs_f64(
            self.scenario.sim_time.as_secs_f64(),
        ));
        let result = self.collect(&sim, &recorder);
        Ok((result, sim))
    }

    /// Build the scenario's simulator (mobility trace, routing, CBR apps,
    /// shared traffic recorder) without running it. This is the
    /// construction half of [`run_with_observer`](Self::run_with_observer),
    /// exposed so checkpointing can capture or restore a simulator at any
    /// point between build and completion.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] when the scenario is inconsistent or its
    /// mobility model cannot be built.
    pub fn build_sim<O: SimObserver>(
        &self,
        observer: O,
    ) -> Result<(Simulator<O>, cavenet_traffic::SharedRecorder), ScenarioError> {
        let s = &self.scenario;
        if s.fidelity != Fidelity::Exact {
            return Err(ScenarioError::WrongFidelity {
                expected: Fidelity::Exact,
            });
        }
        s.validate()?;
        let trace = s.build_trace()?;
        let mobility = match s.mobility_quantum {
            Some(q) => TraceMobility::quantized(trace, q),
            None => TraceMobility::new(trace),
        };

        let recorder = TrafficRecorder::new_shared();
        let protocol = s.protocol;
        let mut config = ScenarioConfig {
            propagation: s.propagation,
            ..ScenarioConfig::default()
        };
        if s.rts_cts {
            config.mac.rts_threshold = Some(0);
        }
        let mut builder = Simulator::builder(config)
            .observer(observer)
            .nodes(s.nodes)
            .seed(s.seed)
            .mobility(Box::new(mobility))
            .neighbor_grid(s.neighbor_grid)
            .shards(s.shards)
            .fault_plan(s.fault_plan.clone())
            .routing_with(move |_| protocol.instantiate());
        for &sender in &s.traffic.senders {
            builder = builder.app(
                sender as usize,
                Box::new(CbrSource::new(
                    NodeId(s.traffic.receiver),
                    s.traffic.cbr,
                    Rc::clone(&recorder),
                )),
            );
        }
        builder = builder.app(
            s.traffic.receiver as usize,
            Box::new(CbrSink::new(Rc::clone(&recorder))),
        );
        let sim = builder.try_build().map_err(ScenarioError::Fault)?;
        Ok((sim, recorder))
    }

    /// Assemble the experiment's metrics from a finished (or mid-flight)
    /// simulator and its traffic recorder — the collection half of
    /// [`run_with_observer`](Self::run_with_observer).
    pub fn collect<O: SimObserver>(
        &self,
        sim: &Simulator<O>,
        recorder: &cavenet_traffic::SharedRecorder,
    ) -> ExperimentResult {
        let s = &self.scenario;
        let rec = recorder.borrow();
        let senders = s
            .traffic
            .senders
            .iter()
            .map(|&sender| {
                let flow = FlowId::new(
                    NodeId(sender),
                    NodeId(s.traffic.receiver),
                    s.traffic.cbr.port,
                );
                SenderReport {
                    sender,
                    metrics: rec.metrics(flow),
                    goodput_series: rec.goodput_series(flow, Duration::from_secs(1), s.sim_time),
                }
            })
            .collect();

        let mut control_packets = 0;
        let mut control_bytes = 0;
        let mut data_forwarded = 0;
        for i in 0..s.nodes {
            let ns = sim.node_stats(i);
            control_packets += ns.control_sent;
            control_bytes += ns.control_bytes_sent;
            data_forwarded += ns.data_forwarded;
        }

        ExperimentResult {
            protocol: s.protocol,
            duration: s.sim_time,
            senders,
            control_packets,
            control_bytes,
            data_forwarded,
            global: sim.global_stats(),
            drops: sim.drop_counts(),
        }
    }

    /// Build the scenario's fluid engine (mobility trace, flow table,
    /// analytic backend) without running it — the fluid counterpart of
    /// [`build_sim`](Self::build_sim), exposed for checkpointing and the
    /// fidelity benches.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::WrongFidelity`] unless the scenario selects
    /// [`Fidelity::Fluid`]; otherwise any scenario validation or fluid
    /// construction error.
    pub fn build_fluid(&self) -> Result<FluidEngine, ScenarioError> {
        let s = &self.scenario;
        if s.fidelity != Fidelity::Fluid {
            return Err(ScenarioError::WrongFidelity {
                expected: Fidelity::Fluid,
            });
        }
        s.validate()?;
        let trace = s.build_trace()?;
        // The very parameterization the exact engine would run.
        let mut config = ScenarioConfig {
            propagation: s.propagation,
            ..ScenarioConfig::default()
        };
        if s.rts_cts {
            config.mac.rts_threshold = Some(0);
        }
        let (discipline, control_pps_per_node, control_payload_bytes) =
            fluid_routing_model(s.protocol);
        let flows = s
            .traffic
            .senders
            .iter()
            .map(|&sender| FluidFlow {
                src: sender,
                dst: s.traffic.receiver,
                cbr: s.traffic.cbr,
            })
            .collect();
        let cfg = FluidConfig {
            nodes: s.nodes as u32,
            sim_time: s.sim_time,
            step: Duration::from_secs(1),
            backend: ExactBackend::from(&config),
            discipline,
            control_pps_per_node,
            control_payload_bytes,
            flows,
            shards: s.shards as u32,
        };
        FluidEngine::new(cfg, trace).map_err(ScenarioError::Fluid)
    }

    /// Run the scenario under the fluid backend and collect metrics; also
    /// returns the finished engine (for its digest and report).
    ///
    /// # Errors
    ///
    /// See [`build_fluid`](Self::build_fluid).
    pub fn run_fluid(&self) -> Result<(ExperimentResult, FluidEngine), ScenarioError> {
        let mut engine = self.build_fluid()?;
        engine.run_to_end();
        let result = self.collect_fluid(&engine);
        Ok((result, engine))
    }

    /// Assemble experiment metrics from a (finished or mid-flight) fluid
    /// engine — the fluid counterpart of [`collect`](Self::collect). Flow
    /// metrics are exact in shape; engine-level counters (`global`,
    /// control totals) are the model's analytic estimates, and `drops`
    /// stays empty (the fluid model has no per-packet drop ledger).
    pub fn collect_fluid(&self, engine: &FluidEngine) -> ExperimentResult {
        let s = &self.scenario;
        let report = engine.report();
        let senders = s
            .traffic
            .senders
            .iter()
            .zip(&report.flows)
            .map(|(&sender, f)| {
                debug_assert_eq!(f.src, sender);
                SenderReport {
                    sender,
                    metrics: FlowMetrics {
                        flow: FlowId::new(NodeId(f.src), NodeId(f.dst), f.port),
                        sent: f.sent,
                        received: f.received,
                        duplicates: 0,
                        bytes_sent: f.bytes_sent,
                        bytes_received: f.bytes_received,
                        mean_delay: f.mean_delay,
                        max_delay: f.max_delay,
                        first_sent: f
                            .first_sent
                            .map(|d| SimTime::from_nanos(d.as_nanos() as u64)),
                        last_received: f
                            .last_received
                            .map(|d| SimTime::from_nanos(d.as_nanos() as u64)),
                    },
                    goodput_series: f.goodput_bps.clone(),
                }
            })
            .collect();
        let (_, control_pps, control_payload) = fluid_routing_model(s.protocol);
        let control_packets =
            (s.nodes as f64 * control_pps * s.sim_time.as_secs_f64()).round() as u64;
        let total_sent: u64 = report.flows.iter().map(|f| f.sent).sum();
        ExperimentResult {
            protocol: s.protocol,
            duration: s.sim_time,
            senders,
            control_packets,
            control_bytes: control_packets * u64::from(control_payload),
            data_forwarded: report
                .est_transmissions
                .saturating_sub(control_packets + total_sent),
            global: GlobalStats {
                transmissions: report.est_transmissions,
                decoded: report.est_decoded,
                collisions: 0,
                rx_while_tx: 0,
                events_processed: report.steps,
            },
            drops: DropCounts::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MobilitySource;

    fn quick_scenario(protocol: Protocol, seed: u64) -> Scenario {
        let mut s = Scenario::paper_table1(protocol);
        // Shorter run for unit tests: traffic 5–25 s, 30 s total.
        s.sim_time = Duration::from_secs(30);
        s.traffic.cbr.start = Duration::from_secs(5);
        s.traffic.cbr.stop = Duration::from_secs(25);
        s.traffic.senders = vec![1, 2, 3];
        s.seed = seed;
        s
    }

    #[test]
    fn aodv_experiment_delivers_traffic() {
        let r = Experiment::new(quick_scenario(Protocol::Aodv, 1))
            .run()
            .unwrap();
        assert_eq!(r.senders.len(), 3);
        assert!(
            r.total_sent() >= 290,
            "3 senders × ~100 packets, got {}",
            r.total_sent()
        );
        assert!(
            r.total_received() > 100,
            "AODV should deliver a good share, got {}/{}",
            r.total_received(),
            r.total_sent()
        );
        assert!(r.control_packets > 0);
    }

    #[test]
    fn dymo_experiment_delivers_traffic() {
        let r = Experiment::new(quick_scenario(Protocol::Dymo, 1))
            .run()
            .unwrap();
        assert!(
            r.total_received() > 100,
            "DYMO should deliver, got {}/{}",
            r.total_received(),
            r.total_sent()
        );
    }

    #[test]
    fn olsr_experiment_runs() {
        let r = Experiment::new(quick_scenario(Protocol::Olsr, 1))
            .run()
            .unwrap();
        // OLSR delivers less on this dynamic ring (the paper's point), but
        // the run must complete and produce some deliveries.
        assert!(r.total_sent() > 0);
        assert!(r.control_packets > 0);
    }

    #[test]
    fn results_are_deterministic() {
        let a = Experiment::new(quick_scenario(Protocol::Aodv, 7))
            .run()
            .unwrap();
        let b = Experiment::new(quick_scenario(Protocol::Aodv, 7))
            .run()
            .unwrap();
        assert_eq!(a.total_received(), b.total_received());
        assert_eq!(a.control_packets, b.control_packets);
        assert_eq!(a.global, b.global);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Experiment::new(quick_scenario(Protocol::Aodv, 1))
            .run()
            .unwrap();
        let b = Experiment::new(quick_scenario(Protocol::Aodv, 2))
            .run()
            .unwrap();
        // Mobility and backoff differ; byte-identical outcomes would signal
        // a seeding bug.
        assert!(
            a.global.transmissions != b.global.transmissions
                || a.total_received() != b.total_received()
        );
    }

    #[test]
    fn goodput_series_respects_traffic_window() {
        let r = Experiment::new(quick_scenario(Protocol::Aodv, 3))
            .run()
            .unwrap();
        for s in &r.senders {
            assert_eq!(s.goodput_series.len(), 30);
            // Nothing before the 5 s start.
            assert_eq!(s.goodput_series[0], 0.0);
            assert_eq!(s.goodput_series[3], 0.0);
        }
    }

    #[test]
    fn invalid_scenario_is_rejected() {
        let mut s = quick_scenario(Protocol::Aodv, 1);
        s.traffic.senders = vec![40];
        assert!(Experiment::new(s).run().is_err());
    }

    #[test]
    fn neighbor_grid_matches_brute_force_end_to_end() {
        // The full BA → CPS pipeline (CA mobility, AODV, CBR traffic) must
        // produce byte-identical results with the grid on and off.
        let mut with_grid = quick_scenario(Protocol::Aodv, 11);
        with_grid.neighbor_grid = true;
        let mut brute = with_grid.clone();
        brute.neighbor_grid = false;
        let a = Experiment::new(with_grid).run().unwrap();
        let b = Experiment::new(brute).run().unwrap();
        assert_eq!(a.global, b.global, "engine counters diverged");
        assert_eq!(a.total_received(), b.total_received());
        assert_eq!(a.control_packets, b.control_packets);
        assert_eq!(a.mean_delay(), b.mean_delay());
        assert!(a.total_received() > 0, "scenario must carry traffic");
    }

    #[test]
    fn quantized_mobility_runs_and_delivers() {
        // Quantizing positions to the 1 s CA step changes *when* positions
        // refresh (so results may differ from the continuous path) but must
        // stay a healthy, deterministic simulation.
        let mut s = quick_scenario(Protocol::Aodv, 1);
        s.mobility_quantum = Some(Duration::from_secs(1));
        let a = Experiment::new(s.clone()).run().unwrap();
        let b = Experiment::new(s).run().unwrap();
        assert!(a.total_received() > 100, "got {}", a.total_received());
        assert_eq!(a.global, b.global, "quantized run must stay deterministic");
    }

    #[test]
    fn fluid_fidelity_runs_and_delivers() {
        let mut s = quick_scenario(Protocol::Aodv, 1);
        s.fidelity = Fidelity::Fluid;
        let r = Experiment::new(s).run().unwrap();
        assert_eq!(r.senders.len(), 3);
        assert_eq!(r.total_sent(), 300, "3 senders x 100 exact emissions");
        assert!(r.total_received() > 0, "connected ring must deliver");
        assert!(r.control_packets > 0);
        assert!(r.global.transmissions > 0);
        // The goodput series has the exact recorder's shape.
        assert_eq!(r.senders[0].goodput_series.len(), 30);
    }

    #[test]
    fn fluid_runs_are_deterministic_and_seed_sensitive() {
        let fluid = |seed| {
            let mut s = quick_scenario(Protocol::Aodv, seed);
            s.fidelity = Fidelity::Fluid;
            Experiment::new(s).run_fluid().unwrap()
        };
        let (ra, ea) = fluid(7);
        let (rb, eb) = fluid(7);
        assert_eq!(ea.digest(), eb.digest(), "same seed, same digest");
        assert_eq!(ra.total_received(), rb.total_received());
        // A different seed shifts the CA jam pattern, which the fluid
        // model sees through the trace.
        let (_, ec) = fluid(8);
        assert_ne!(ea.digest(), ec.digest(), "seed must reach the fluid model");
    }

    #[test]
    fn fluid_flooding_scenario_runs() {
        let mut s = quick_scenario(Protocol::Flooding, 1);
        s.fidelity = Fidelity::Fluid;
        let r = Experiment::new(s).run().unwrap();
        assert!(r.mean_pdr() > 0.0);
        assert_eq!(r.control_packets, 0, "flooding has no control plane");
    }

    #[test]
    fn entry_points_enforce_fidelity() {
        let mut s = quick_scenario(Protocol::Aodv, 1);
        s.fidelity = Fidelity::Fluid;
        assert!(matches!(
            Experiment::new(s.clone()).build_sim(NoopObserver).err(),
            Some(ScenarioError::WrongFidelity {
                expected: Fidelity::Exact
            })
        ));
        s.fidelity = Fidelity::Exact;
        assert!(matches!(
            Experiment::new(s).build_fluid().err(),
            Some(ScenarioError::WrongFidelity {
                expected: Fidelity::Fluid
            })
        ));
    }

    #[test]
    fn parked_ring_gives_stable_delivery() {
        let mut s = quick_scenario(Protocol::Aodv, 1);
        s.mobility = MobilitySource::ParkedRing;
        let r = Experiment::new(s).run().unwrap();
        let pdr = r.mean_pdr();
        assert!(pdr > 0.6, "static ring should deliver well, got {pdr}");
    }
}
