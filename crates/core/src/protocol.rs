//! Routing protocol selection.

use std::fmt;
use std::str::FromStr;

use cavenet_net::RoutingProtocol;
use cavenet_routing::{Aodv, Dsdv, Dymo, Flooding, Olsr};

/// Which routing protocol a scenario runs (paper Table 1: AODV, OLSR,
/// DYMO).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Protocol {
    /// Ad-hoc On-demand Distance Vector (RFC 3561).
    Aodv,
    /// Optimized Link State Routing (RFC 3626), hop-count metric.
    Olsr,
    /// OLSR with the ETX/LQ link metric (olsrd extension).
    OlsrEtx,
    /// Dynamic MANET On-demand routing (IETF draft).
    Dymo,
    /// Destination-Sequenced Distance Vector — AODV's proactive ancestor.
    Dsdv,
    /// TTL-scoped flooding baseline.
    Flooding,
}

impl Protocol {
    /// The three protocols the paper evaluates, in its order.
    pub const PAPER_SET: [Protocol; 3] = [Protocol::Aodv, Protocol::Olsr, Protocol::Dymo];

    /// Instantiate a fresh protocol state machine for one node.
    pub fn instantiate(&self) -> Box<dyn RoutingProtocol> {
        match self {
            Protocol::Aodv => Box::new(Aodv::new()),
            Protocol::Olsr => Box::new(Olsr::new()),
            Protocol::OlsrEtx => Box::new(Olsr::new_etx()),
            Protocol::Dymo => Box::new(Dymo::new()),
            Protocol::Dsdv => Box::new(Dsdv::new()),
            Protocol::Flooding => Box::new(Flooding::new()),
        }
    }

    /// Whether the protocol is reactive (discovers routes on demand).
    pub fn is_reactive(&self) -> bool {
        matches!(self, Protocol::Aodv | Protocol::Dymo)
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Protocol::Aodv => "AODV",
            Protocol::Olsr => "OLSR",
            Protocol::OlsrEtx => "OLSR-ETX",
            Protocol::Dymo => "DYMO",
            Protocol::Dsdv => "DSDV",
            Protocol::Flooding => "FLOODING",
        };
        f.write_str(s)
    }
}

/// Error returned when parsing an unknown protocol name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProtocolError {
    input: String,
}

impl fmt::Display for ParseProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown protocol `{}` (expected aodv, olsr, olsr-etx, dymo, dsdv or flooding)",
            self.input
        )
    }
}

impl std::error::Error for ParseProtocolError {}

impl FromStr for Protocol {
    type Err = ParseProtocolError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "aodv" => Ok(Protocol::Aodv),
            "olsr" => Ok(Protocol::Olsr),
            "olsr-etx" | "olsretx" | "etx" => Ok(Protocol::OlsrEtx),
            "dymo" => Ok(Protocol::Dymo),
            "dsdv" => Ok(Protocol::Dsdv),
            "flood" | "flooding" => Ok(Protocol::Flooding),
            _ => Err(ParseProtocolError {
                input: s.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for p in [
            Protocol::Aodv,
            Protocol::Olsr,
            Protocol::OlsrEtx,
            Protocol::Dymo,
            Protocol::Dsdv,
            Protocol::Flooding,
        ] {
            let parsed: Protocol = p.to_string().parse().unwrap();
            assert_eq!(parsed, p);
        }
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!("dsr".parse::<Protocol>().is_err());
    }

    #[test]
    fn instantiation_names_match() {
        assert_eq!(Protocol::Aodv.instantiate().name(), "aodv");
        assert_eq!(Protocol::Olsr.instantiate().name(), "olsr");
        assert_eq!(Protocol::OlsrEtx.instantiate().name(), "olsr");
        assert_eq!(Protocol::Dymo.instantiate().name(), "dymo");
        assert_eq!(Protocol::Dsdv.instantiate().name(), "dsdv");
        assert_eq!(Protocol::Flooding.instantiate().name(), "flooding");
    }

    #[test]
    fn reactivity() {
        assert!(Protocol::Aodv.is_reactive());
        assert!(Protocol::Dymo.is_reactive());
        assert!(!Protocol::Olsr.is_reactive());
        assert!(!Protocol::Dsdv.is_reactive());
    }

    #[test]
    fn paper_set() {
        assert_eq!(Protocol::PAPER_SET.len(), 3);
    }
}
