//! Declarative experiment scenarios, including the paper's Table 1.

use std::error::Error;
use std::fmt;
use std::time::Duration;

use cavenet_ca::{Boundary, CaError, Lane, NasParams, DEFAULT_VMAX};
use cavenet_mobility::{LaneGeometry, MobilityError, MobilityTrace, TraceGenerator};
use cavenet_net::{FaultPlan, Fidelity, NetError, Propagation};
use cavenet_traffic::CbrConfig;

use crate::Protocol;

/// How node mobility is produced.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum MobilitySource {
    /// The Nagel–Schreckenberg CA on a closed ring matching the scenario's
    /// circuit length — the improved-CAVENET mobility model.
    NasCa {
        /// Random slow-down probability `p`.
        slowdown_probability: f64,
        /// Maximum velocity in cells/step (default 5 = 135 km/h).
        vmax: u32,
    },
    /// A multi-lane NaS ring (paper Fig. 1): `lanes` concentric rings with
    /// lane changing; the scenario's `nodes` are split evenly across lanes.
    /// Adjacent lanes are offset radially by one lane width (3.75 m), so a
    /// vehicle on the inner ring can relay for the outer one.
    MultiLaneCa {
        /// Number of lanes (≥ 1).
        lanes: usize,
        /// Random slow-down probability `p`.
        slowdown_probability: f64,
        /// Probability of taking an advantageous, safe lane change.
        change_probability: f64,
    },
    /// Nodes parked evenly around the circuit (no movement) — isolates
    /// protocol behaviour from mobility.
    ParkedRing,
    /// A pre-generated trace (e.g. parsed from an ns-2 movement file).
    Trace(MobilityTrace),
}

/// The application traffic layout.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficPattern {
    /// Sending node ids (paper: 1–8).
    pub senders: Vec<u32>,
    /// Receiving node id (paper: 0).
    pub receiver: u32,
    /// Per-sender CBR parameters.
    pub cbr: CbrConfig,
}

impl TrafficPattern {
    /// The paper's pattern: senders 1–8 → receiver 0, Table 1 CBR.
    pub fn paper_default() -> Self {
        TrafficPattern {
            senders: (1..=8).collect(),
            receiver: 0,
            cbr: CbrConfig::paper_default(),
        }
    }
}

/// A complete experiment description.
///
/// [`Scenario::paper_table1`] reproduces Table 1 of the paper:
///
/// | parameter | value |
/// |---|---|
/// | routing protocol | AODV / OLSR / DYMO |
/// | simulation time | 100 s |
/// | simulation area | 3000 m circuit |
/// | number of nodes | 30 |
/// | traffic | CBR, 5 pkt/s × 512 B, deterministic src/dst |
/// | MAC | IEEE 802.11 DCF, 2 Mb/s, no RTS/CTS |
/// | transmission range | 250 m |
/// | propagation | two-ray ground |
/// | HELLO intervals | 1 s (AODV/OLSR/DYMO), TC 2 s |
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Routing protocol under test.
    pub protocol: Protocol,
    /// Total simulated time.
    pub sim_time: Duration,
    /// Number of vehicles/nodes.
    pub nodes: usize,
    /// Circuit length in metres.
    pub circuit_m: f64,
    /// Mobility source.
    pub mobility: MobilitySource,
    /// Traffic layout.
    pub traffic: TrafficPattern,
    /// Radio propagation model.
    pub propagation: Propagation,
    /// Enable the 802.11 RTS/CTS handshake (Table 1: off). When on, every
    /// unicast data frame is preceded by an RTS/CTS exchange with NAV-based
    /// virtual carrier sensing.
    pub rts_cts: bool,
    /// Use the spatial neighbor grid for broadcast scans (default: on).
    /// The event schedule is identical either way; off exists for
    /// benchmarking the brute-force path.
    pub neighbor_grid: bool,
    /// Treat trace positions as constant within steps of this width (see
    /// [`TraceMobility::quantized`](crate::TraceMobility::quantized)).
    /// `None` (the default) resolves positions exactly at every event time.
    pub mobility_quantum: Option<Duration>,
    /// Fault-injection plan (node churn, link loss, fading bursts). The
    /// default empty plan leaves the simulation untouched — results are
    /// bit-identical to a scenario without the field.
    pub fault_plan: FaultPlan,
    /// Spatial shards for intra-trial parallelism (default: 1, serial).
    ///
    /// An *execution* knob, not a behaviour knob: any value produces
    /// bit-identical results (see
    /// [`SimulatorBuilder::shards`](cavenet_net::SimulatorBuilder::shards)),
    /// which is why it is excluded from checkpoint/run identity — a
    /// snapshot taken under N shards resumes under M.
    pub shards: usize,
    /// Model backend fidelity (default: [`Fidelity::Exact`], the per-frame
    /// DCF engine). [`Fidelity::Fluid`] selects the flow-level analytic
    /// backend (`cavenet-fluid`): 100–1000x faster, approximate, still
    /// deterministic.
    ///
    /// A *behaviour* knob, unlike `shards`: results differ between
    /// fidelities, so it participates in checkpoint/run identity — a
    /// snapshot taken under one fidelity refuses to resume under the other.
    pub fidelity: Fidelity,
    /// Master random seed.
    pub seed: u64,
}

impl Scenario {
    /// The paper's Table 1 scenario for the given protocol.
    ///
    /// The paper does not state the CA's slow-down probability for the
    /// protocol runs; we use `p = 0.3` — the value of its space-time
    /// examples (Fig. 5-a/b) — which produces realistic stop-and-go
    /// dynamics. See EXPERIMENTS.md.
    pub fn paper_table1(protocol: Protocol) -> Self {
        Scenario {
            protocol,
            sim_time: Duration::from_secs(100),
            nodes: 30,
            circuit_m: 3000.0,
            mobility: MobilitySource::NasCa {
                slowdown_probability: 0.3,
                vmax: DEFAULT_VMAX,
            },
            traffic: TrafficPattern::paper_default(),
            propagation: Propagation::TwoRayGround,
            rts_cts: false,
            neighbor_grid: true,
            mobility_quantum: None,
            fault_plan: FaultPlan::default(),
            shards: 1,
            fidelity: Fidelity::Exact,
            seed: 1,
        }
    }

    /// Generate the mobility trace for this scenario (the BA block's
    /// output).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] if the CA parameters are inconsistent
    /// (e.g. more vehicles than cells).
    pub fn build_trace(&self) -> Result<MobilityTrace, ScenarioError> {
        match &self.mobility {
            MobilitySource::Trace(t) => Ok(t.clone()),
            MobilitySource::ParkedRing => {
                // A one-sample trace per node, parked on the ring.
                let geometry = LaneGeometry::ring_circle(self.circuit_m);
                let spacing = self.circuit_m / self.nodes as f64;
                let nodes = (0..self.nodes)
                    .map(|i| {
                        cavenet_mobility::NodeTrajectory::new(vec![cavenet_mobility::TraceSample {
                            time: 0.0,
                            position: geometry.embed(i as f64 * spacing),
                            speed: 0.0,
                            teleport: false,
                        }])
                        .map_err(ScenarioError::Trace)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(MobilityTrace::from_trajectories(nodes))
            }
            MobilitySource::MultiLaneCa {
                lanes,
                slowdown_probability,
                change_probability,
            } => {
                use cavenet_ca::{MultiLaneParams, MultiLaneRoad};
                let lanes = (*lanes).max(1);
                let cells = (self.circuit_m / cavenet_ca::CELL_LENGTH_M).round() as usize;
                let per_lane = self.nodes.div_ceil(lanes);
                let nas = NasParams::builder()
                    .length(cells)
                    .vehicle_count(per_lane)
                    .slowdown_probability(*slowdown_probability)
                    .build()?;
                let params = MultiLaneParams::new(nas, lanes, *change_probability)?;
                let mut road = MultiLaneRoad::new(params, self.seed)?;
                for _ in 0..200 {
                    road.step();
                }
                // Concentric rings whose radii differ by one lane width
                // (3.75 m): circumference grows by 2π·3.75 per lane.
                let geometries: Vec<LaneGeometry> = (0..lanes)
                    .map(|k| {
                        LaneGeometry::ring_circle(
                            self.circuit_m + k as f64 * 3.75 * std::f64::consts::TAU,
                        )
                    })
                    .collect();
                let steps = self.sim_time.as_secs() as usize + 1;
                Ok(TraceGenerator::new(geometries[0])
                    .steps(steps)
                    .generate_multilane(road, &geometries))
            }
            MobilitySource::NasCa {
                slowdown_probability,
                vmax,
            } => {
                let cells = (self.circuit_m / cavenet_ca::CELL_LENGTH_M).round() as usize;
                let params = NasParams::builder()
                    .length(cells)
                    .vehicle_count(self.nodes)
                    .vmax(*vmax)
                    .slowdown_probability(*slowdown_probability)
                    .build()?;
                // Random placement (not uniform): the stochastic NaS model
                // then develops jam clusters separated by gaps that can
                // exceed the 250 m radio range — the connectivity dynamics
                // that drive the paper's bursty goodput surfaces.
                let mut lane = Lane::with_random_placement(params, Boundary::Closed, self.seed)?;
                // Warm the CA up so the trace starts in the (quasi-)
                // stationary regime (paper §IV-B's transient-removal advice).
                for _ in 0..200 {
                    lane.step();
                }
                let geometry = LaneGeometry::ring_circle(self.circuit_m);
                let steps = self.sim_time.as_secs() as usize + 1;
                Ok(TraceGenerator::new(geometry).steps(steps).generate(lane))
            }
        }
    }

    /// Validate internal consistency (sender/receiver ids in range, fault
    /// plan well-formed).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::BadTraffic`] when a flow endpoint does not
    /// exist, or [`ScenarioError::Fault`] when the fault plan names an
    /// unknown node, recovers a node that is not down, or has overlapping
    /// or inverted loss windows.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.shards == 0 {
            return Err(ScenarioError::BadShards);
        }
        let n = self.nodes as u32;
        if self.traffic.receiver >= n {
            return Err(ScenarioError::BadTraffic {
                node: self.traffic.receiver,
            });
        }
        for &s in &self.traffic.senders {
            if s >= n || s == self.traffic.receiver {
                return Err(ScenarioError::BadTraffic { node: s });
            }
        }
        self.fault_plan
            .validate(self.nodes)
            .map_err(ScenarioError::Fault)?;
        Ok(())
    }
}

/// Error raised when building or validating a scenario.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// The CA mobility parameters are invalid.
    Mobility(CaError),
    /// A mobility trace is malformed (unordered samples, unknown node).
    Trace(MobilityError),
    /// A traffic endpoint is out of range or self-directed.
    BadTraffic {
        /// The offending node id.
        node: u32,
    },
    /// `shards` is zero (the serial engine is `shards = 1`).
    BadShards,
    /// The fluid backend rejected the scenario (empty, bad flow endpoint).
    Fluid(cavenet_fluid::FluidError),
    /// An entry point restricted to one fidelity was called under the
    /// other (e.g. the exact engine's observer path on a fluid scenario).
    WrongFidelity {
        /// The fidelity the entry point requires.
        expected: Fidelity,
    },
    /// The fault-injection plan is invalid for this scenario (unknown
    /// node, recover-before-crash, overlapping or inverted windows, bad
    /// probability), or the engine rejected the configuration at build
    /// time.
    Fault(NetError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Mobility(e) => write!(f, "mobility model error: {e}"),
            ScenarioError::Trace(e) => write!(f, "mobility trace error: {e}"),
            ScenarioError::BadTraffic { node } => {
                write!(
                    f,
                    "traffic endpoint {node} is out of range or self-directed"
                )
            }
            ScenarioError::Fault(e) => write!(f, "fault plan error: {e}"),
            ScenarioError::BadShards => {
                write!(f, "shards must be at least 1 (1 = serial engine)")
            }
            ScenarioError::Fluid(e) => write!(f, "fluid backend error: {e}"),
            ScenarioError::WrongFidelity { expected } => {
                write!(f, "entry point requires the {} fidelity", expected.name())
            }
        }
    }
}

impl Error for ScenarioError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScenarioError::Mobility(e) => Some(e),
            ScenarioError::Trace(e) => Some(e),
            ScenarioError::BadTraffic { .. } => None,
            ScenarioError::BadShards => None,
            ScenarioError::Fault(e) => Some(e),
            ScenarioError::Fluid(e) => Some(e),
            ScenarioError::WrongFidelity { .. } => None,
        }
    }
}

impl From<CaError> for ScenarioError {
    fn from(e: CaError) -> Self {
        ScenarioError::Mobility(e)
    }
}

impl From<NetError> for ScenarioError {
    fn from(e: NetError) -> Self {
        ScenarioError::Fault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let s = Scenario::paper_table1(Protocol::Aodv);
        assert_eq!(s.sim_time, Duration::from_secs(100));
        assert_eq!(s.nodes, 30);
        assert_eq!(s.circuit_m, 3000.0);
        assert_eq!(s.propagation, Propagation::TwoRayGround);
        assert_eq!(s.traffic.senders, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(s.traffic.receiver, 0);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn ca_trace_has_thirty_nodes_and_full_duration() {
        let s = Scenario::paper_table1(Protocol::Dymo);
        let trace = s.build_trace().unwrap();
        assert_eq!(trace.node_count(), 30);
        assert!(trace.duration() >= 100.0);
    }

    #[test]
    fn parked_ring_trace() {
        let mut s = Scenario::paper_table1(Protocol::Aodv);
        s.mobility = MobilitySource::ParkedRing;
        let trace = s.build_trace().unwrap();
        assert_eq!(trace.node_count(), 30);
        let a = trace.position_at(0, 0.0).unwrap();
        let b = trace.position_at(0, 50.0).unwrap();
        assert_eq!(a, b, "parked nodes do not move");
    }

    #[test]
    fn validation_catches_bad_endpoints() {
        let mut s = Scenario::paper_table1(Protocol::Aodv);
        s.traffic.receiver = 99;
        assert!(matches!(
            s.validate(),
            Err(ScenarioError::BadTraffic { node: 99 })
        ));
        let mut s = Scenario::paper_table1(Protocol::Aodv);
        s.traffic.senders = vec![0]; // same as receiver
        assert!(s.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_fault_plans() {
        use cavenet_net::SimTime;
        let at = SimTime::from_secs_f64(10.0);
        let mut s = Scenario::paper_table1(Protocol::Aodv);
        s.fault_plan = FaultPlan::new().crash(at, 99);
        assert!(matches!(
            s.validate(),
            Err(ScenarioError::Fault(NetError::FaultUnknownNode {
                node: 99,
                nodes: 30
            }))
        ));
        let mut s = Scenario::paper_table1(Protocol::Aodv);
        s.fault_plan = FaultPlan::new().recover(at, 5);
        assert!(matches!(
            s.validate(),
            Err(ScenarioError::Fault(NetError::FaultRecoverBeforeCrash {
                node: 5,
                ..
            }))
        ));
    }

    #[test]
    fn validation_rejects_zero_shards() {
        let mut s = Scenario::paper_table1(Protocol::Aodv);
        assert_eq!(s.shards, 1, "serial by default");
        s.shards = 0;
        assert!(matches!(s.validate(), Err(ScenarioError::BadShards)));
        s.shards = 4;
        assert!(s.validate().is_ok());
    }

    #[test]
    fn bad_ca_parameters_surface_as_error() {
        let mut s = Scenario::paper_table1(Protocol::Aodv);
        s.mobility = MobilitySource::NasCa {
            slowdown_probability: 2.0,
            vmax: 5,
        };
        assert!(matches!(s.build_trace(), Err(ScenarioError::Mobility(_))));
    }

    #[test]
    fn multilane_trace_covers_all_nodes() {
        let mut s = Scenario::paper_table1(Protocol::Aodv);
        s.mobility = MobilitySource::MultiLaneCa {
            lanes: 2,
            slowdown_probability: 0.3,
            change_probability: 0.5,
        };
        let trace = s.build_trace().unwrap();
        assert!(trace.node_count() >= 30);
        assert!(trace.duration() >= 100.0);
        // Vehicles move.
        let a = trace.position_at(0, 0.0).unwrap();
        let b = trace.position_at(0, 50.0).unwrap();
        assert!(
            a.distance(&b) > 1.0 || {
                // A vehicle stuck in a jam may barely move; check another.
                let c = trace.position_at(5, 0.0).unwrap();
                let d = trace.position_at(5, 50.0).unwrap();
                c.distance(&d) > 1.0
            }
        );
    }

    #[test]
    fn multilane_experiment_runs() {
        let mut s = Scenario::paper_table1(Protocol::Aodv);
        s.mobility = MobilitySource::MultiLaneCa {
            lanes: 2,
            slowdown_probability: 0.3,
            change_probability: 0.5,
        };
        s.sim_time = std::time::Duration::from_secs(30);
        s.traffic.cbr.start = std::time::Duration::from_secs(5);
        s.traffic.cbr.stop = std::time::Duration::from_secs(25);
        s.traffic.senders = vec![1, 2];
        let r = crate::Experiment::new(s).run().unwrap();
        assert!(r.total_sent() > 0);
    }

    #[test]
    fn trace_source_passthrough() {
        let s = Scenario::paper_table1(Protocol::Aodv);
        let t = s.build_trace().unwrap();
        let mut s2 = s;
        s2.mobility = MobilitySource::Trace(t.clone());
        let t2 = s2.build_trace().unwrap();
        assert_eq!(t.node_count(), t2.node_count());
    }
}
