//! Periodic checkpoints and resumable runs over the full pipeline.
//!
//! The `cavenet-checkpoint` crate captures a bare simulator; this module
//! lifts that to a whole [`Experiment`]: the snapshot additionally carries
//! the shared CBR traffic ledger (the metrics source) and a fingerprint of
//! the mobility configuration, and its metadata is derived from the
//! [`Scenario`] so a snapshot refuses to restore into a different one.
//!
//! Three levels of service:
//!
//! * [`Experiment::snapshot_now`] / [`Experiment::resume_from_snapshot`] —
//!   capture or restore a single point in a run.
//! * [`Experiment::run_with_checkpoints`] /
//!   [`Experiment::resume_with_checkpoints`] — drive a run to completion
//!   writing a snapshot file every `every` of *virtual* time, and pick a
//!   run back up from the newest readable checkpoint in a directory
//!   (silently falling back past corrupt or foreign files).
//! * [`Campaign::run_resumable`] — a multi-seed sweep where every trial
//!   checkpoints into its own subdirectory, so an interrupted sweep
//!   restarts from the last completed (trial, checkpoint) pair instead of
//!   from zero.
//!
//! Resumption is **bit-identical**: a run driven `0 → T` and a run driven
//! `0 → k`, snapshotted, restored in a fresh process and driven `k → T`
//! produce byte-equal event streams (proven by golden digests in the
//! conformance suite). The [`Lineage`] of a resumed run — the container
//! hash of the snapshot it woke from and the engine step it resumed at —
//! is what telemetry stamps into a `RunManifest`.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use cavenet_checkpoint::{
    capture_simulator, restore_simulator, section, store, Snapshot, SnapshotError, SnapshotMeta,
};
use cavenet_fluid::FluidEngine;
use cavenet_net::{Fidelity, SimObserver, SimTime, Simulator, WireWriter};
use cavenet_rng::fnv::fnv64;
use cavenet_stats::Ensemble;
use cavenet_traffic::SharedRecorder;

use crate::{Experiment, ExperimentResult, Scenario, ScenarioError};

/// Why a checkpointed run could not start, save or resume.
#[derive(Debug)]
pub enum CheckpointError {
    /// The scenario itself is invalid.
    Scenario(ScenarioError),
    /// A snapshot failed to encode, decode or apply.
    Snapshot(SnapshotError),
    /// A checkpoint file or directory could not be read or written.
    Io(std::io::Error),
    /// The checkpoint plan's interval is zero — it would snapshot forever
    /// without advancing virtual time.
    ZeroInterval,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Scenario(e) => write!(f, "scenario error: {e}"),
            CheckpointError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::ZeroInterval => {
                write!(f, "checkpoint interval must be non-zero")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Scenario(e) => Some(e),
            CheckpointError::Snapshot(e) => Some(e),
            CheckpointError::Io(e) => Some(e),
            CheckpointError::ZeroInterval => None,
        }
    }
}

impl From<ScenarioError> for CheckpointError {
    fn from(e: ScenarioError) -> Self {
        CheckpointError::Scenario(e)
    }
}

impl From<SnapshotError> for CheckpointError {
    fn from(e: SnapshotError) -> Self {
        CheckpointError::Snapshot(e)
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Where a resumed run came from. Stamped into run manifests
/// (`parent_snapshot_hash` / `resume_step`); all-zero for a cold run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Lineage {
    /// Container hash of the snapshot the run resumed from (0 = cold).
    pub parent_snapshot_hash: u64,
    /// Engine step (events dispatched) at which the resume started.
    pub resume_step: u64,
}

impl Lineage {
    /// `true` when the run started from scratch rather than a snapshot.
    pub fn is_cold(&self) -> bool {
        self.parent_snapshot_hash == 0
    }
}

/// Where and how often to write checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointPlan {
    /// Virtual-time interval between snapshots (also the resume
    /// granularity). Must be non-zero.
    pub every: Duration,
    /// Directory for `ckpt_<time_ns>.bin` files (created on demand).
    pub dir: PathBuf,
}

/// The snapshot identity of a scenario: scenario hash (over its canonical
/// `Debug` rendering, the same idiom run manifests use), fault-plan hash
/// (over [`FaultPlan::render`](cavenet_net::FaultPlan::render), 0 when
/// unfaulted), seed and node count.
///
/// Execution-layout knobs that provably do not affect results are
/// normalized to their defaults before hashing — today that is
/// `Scenario::shards` (any shard count is bit-identical, DESIGN.md §14).
/// This is what lets a snapshot taken under N shards resume under M: the
/// two scenarios share one identity.
///
/// `Scenario::fidelity` is **not** normalized: the exact and fluid
/// backends produce different results, so the two fidelities of one
/// scenario have distinct identities and a snapshot taken under one
/// refuses to resume under the other.
pub fn scenario_identity(s: &Scenario) -> SnapshotMeta {
    let fault_plan_hash = if s.fault_plan.is_empty() {
        0
    } else {
        fnv64(s.fault_plan.render().as_bytes())
    };
    let mut canonical = s.clone();
    canonical.shards = 1;
    SnapshotMeta {
        scenario_hash: fnv64(format!("{canonical:?}").as_bytes()),
        fault_plan_hash,
        seed: s.seed,
        nodes: s.nodes as u64,
        time_ns: 0,
        step: 0,
    }
}

/// Fingerprint of everything that shapes the (regenerated, never
/// serialized) mobility trace.
fn mobility_fingerprint(s: &Scenario) -> u64 {
    fnv64(
        format!(
            "{:?}|{:?}|{}|{}|{}",
            s.mobility, s.mobility_quantum, s.circuit_m, s.nodes, s.seed
        )
        .as_bytes(),
    )
}

impl Experiment {
    /// Snapshot a mid-flight run: the simulator's six sections plus the
    /// traffic ledger and the mobility fingerprint.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when any section fails to serialize.
    pub fn snapshot_now<O: SimObserver>(
        &self,
        sim: &Simulator<O>,
        recorder: &SharedRecorder,
    ) -> Result<Snapshot, SnapshotError> {
        let mut snap = capture_simulator(sim, scenario_identity(self.scenario()))?;
        let mut w = WireWriter::new();
        recorder.borrow().capture(&mut w);
        snap.insert(section::TRAFFIC, w.into_bytes())?;
        let mut w = WireWriter::new();
        w.put_u64(mobility_fingerprint(self.scenario()));
        snap.insert(section::MOBILITY, w.into_bytes())?;
        Ok(snap)
    }

    /// Apply `snap` to a freshly built simulator/recorder pair.
    fn restore_into<O: SimObserver>(
        &self,
        sim: &mut Simulator<O>,
        recorder: &SharedRecorder,
        snap: &Snapshot,
    ) -> Result<SnapshotMeta, SnapshotError> {
        let mut r = snap.reader(section::MOBILITY)?;
        let found = r
            .get_u64()
            .and_then(|v| r.finish().map(|()| v))
            .map_err(SnapshotError::wire(section::MOBILITY))?;
        let expected = mobility_fingerprint(self.scenario());
        if found != expected {
            return Err(SnapshotError::MetaMismatch {
                what: "mobility_fingerprint",
                found,
                expected,
            });
        }
        let meta = restore_simulator(sim, snap, &scenario_identity(self.scenario()))?;
        let mut r = snap.reader(section::TRAFFIC)?;
        recorder
            .borrow_mut()
            .restore(&mut r)
            .and_then(|()| r.finish())
            .map_err(SnapshotError::wire(section::TRAFFIC))?;
        Ok(meta)
    }

    /// Build a fresh simulator for this scenario and restore `snap` into
    /// it, returning the simulator ready to continue from the snapshot's
    /// capture point, its traffic recorder, and the snapshot metadata.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Scenario`] when the scenario cannot build;
    /// [`CheckpointError::Snapshot`] when the snapshot is malformed or
    /// belongs to a different run.
    pub fn resume_from_snapshot<O: SimObserver>(
        &self,
        observer: O,
        snap: &Snapshot,
    ) -> Result<(Simulator<O>, SharedRecorder, SnapshotMeta), CheckpointError> {
        let (mut sim, recorder) = self.build_sim(observer)?;
        let meta = self.restore_into(&mut sim, &recorder, snap)?;
        Ok((sim, recorder, meta))
    }

    /// Drive `sim` from its current clock to the scenario end, writing a
    /// snapshot file after every `plan.every` of virtual time and at the
    /// end.
    fn checkpoint_loop<O: SimObserver>(
        &self,
        sim: &mut Simulator<O>,
        recorder: &SharedRecorder,
        plan: &CheckpointPlan,
    ) -> Result<(), CheckpointError> {
        let every = plan.every.as_nanos().min(u128::from(u64::MAX)) as u64;
        if every == 0 {
            return Err(CheckpointError::ZeroInterval);
        }
        let end = SimTime::from_secs_f64(self.scenario().sim_time.as_secs_f64()).as_nanos();
        let mut now = sim.now().as_nanos();
        while now < end {
            let target = now.saturating_add(every - now % every).min(end);
            sim.run_until(SimTime::from_nanos(target));
            now = sim.now().as_nanos();
            let snap = self.snapshot_now(sim, recorder)?;
            store::write_snapshot(&plan.dir, now, &snap)?;
        }
        Ok(())
    }

    /// Run the scenario to completion, checkpointing periodically into
    /// `plan.dir` (created if needed). The final state is also
    /// checkpointed, so a completed run resumes in O(restore) work.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on scenario, snapshot or filesystem failure,
    /// or [`CheckpointError::ZeroInterval`] when `plan.every` is zero.
    pub fn run_with_checkpoints<O: SimObserver>(
        &self,
        observer: O,
        plan: &CheckpointPlan,
    ) -> Result<(ExperimentResult, Simulator<O>), CheckpointError> {
        fs::create_dir_all(&plan.dir)?;
        let (mut sim, recorder) = self.build_sim(observer)?;
        self.checkpoint_loop(&mut sim, &recorder, plan)?;
        Ok((self.collect(&sim, &recorder), sim))
    }

    /// Resume the scenario from the newest readable checkpoint in
    /// `plan.dir` — falling back, snapshot by snapshot, past corrupt,
    /// truncated or foreign files — or start cold when none works. The run
    /// then continues to completion, still checkpointing periodically.
    ///
    /// Returns the experiment result, the finished simulator and the
    /// [`Lineage`] actually used ([`Lineage::is_cold`] tells whether any
    /// checkpoint was usable). The observer must be `Clone` because a
    /// restore that fails mid-way may have half-applied state: every
    /// attempt (and the cold fallback) starts from a pristine simulator
    /// built around a fresh clone of `observer`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on scenario, snapshot or filesystem failure
    /// (a corrupt checkpoint *file* is not an error — it is skipped), or
    /// [`CheckpointError::ZeroInterval`] when `plan.every` is zero.
    pub fn resume_with_checkpoints<O: SimObserver + Clone>(
        &self,
        observer: O,
        plan: &CheckpointPlan,
    ) -> Result<(ExperimentResult, Simulator<O>, Lineage), CheckpointError> {
        fs::create_dir_all(&plan.dir)?;
        let mut lineage = Lineage::default();
        let mut restored: Option<(Simulator<O>, SharedRecorder)> = None;
        for path in store::list_newest_first(&plan.dir)? {
            let Ok(bytes) = fs::read(&path) else { continue };
            let Ok(snap) = Snapshot::from_bytes(&bytes) else {
                continue;
            };
            let (mut sim, recorder) = self.build_sim(observer.clone())?;
            if let Ok(meta) = self.restore_into(&mut sim, &recorder, &snap) {
                lineage = Lineage {
                    parent_snapshot_hash: snap.container_hash(),
                    resume_step: meta.step,
                };
                restored = Some((sim, recorder));
                break;
            }
        }
        let (mut sim, recorder) = match restored {
            Some(pair) => pair,
            None => self.build_sim(observer)?,
        };
        self.checkpoint_loop(&mut sim, &recorder, plan)?;
        Ok((self.collect(&sim, &recorder), sim, lineage))
    }

    /// Snapshot a mid-flight fluid run: META (scenario identity, which
    /// includes the fidelity), the engine's FLUID section and the mobility
    /// fingerprint — the fluid counterpart of
    /// [`snapshot_now`](Self::snapshot_now).
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when a section fails to serialize.
    pub fn snapshot_fluid(&self, engine: &FluidEngine) -> Result<Snapshot, SnapshotError> {
        let mut identity = scenario_identity(self.scenario());
        identity.time_ns = engine.now_ns();
        identity.step = engine.steps_done();
        let mut snap = Snapshot::new();
        let mut w = WireWriter::new();
        identity.encode(&mut w);
        snap.insert(section::META, w.into_bytes())?;
        let mut w = WireWriter::new();
        engine.capture(&mut w);
        snap.insert(section::FLUID, w.into_bytes())?;
        let mut w = WireWriter::new();
        w.put_u64(mobility_fingerprint(self.scenario()));
        snap.insert(section::MOBILITY, w.into_bytes())?;
        Ok(snap)
    }

    /// Build a fresh fluid engine for this scenario and restore `snap`
    /// into it. A snapshot taken under the exact fidelity is refused —
    /// its META hash differs (fidelity is identity-relevant) and it has no
    /// FLUID section.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Scenario`] when the scenario cannot build (or is
    /// not a fluid scenario); [`CheckpointError::Snapshot`] when the
    /// snapshot is malformed or belongs to a different run.
    pub fn resume_fluid_from_snapshot(
        &self,
        snap: &Snapshot,
    ) -> Result<(FluidEngine, SnapshotMeta), CheckpointError> {
        let mut engine = self.build_fluid()?;
        let mut r = snap.reader(section::MOBILITY)?;
        let found = r
            .get_u64()
            .and_then(|v| r.finish().map(|()| v))
            .map_err(SnapshotError::wire(section::MOBILITY))?;
        let expected = mobility_fingerprint(self.scenario());
        if found != expected {
            return Err(SnapshotError::MetaMismatch {
                what: "mobility_fingerprint",
                found,
                expected,
            }
            .into());
        }
        let meta = snap.meta()?;
        meta.check_same_run(&scenario_identity(self.scenario()))?;
        let mut r = snap.reader(section::FLUID)?;
        engine
            .restore(&mut r)
            .and_then(|()| r.finish())
            .map_err(SnapshotError::wire(section::FLUID))?;
        Ok((engine, meta))
    }

    /// Drive `engine` to the scenario end, snapshotting every `plan.every`
    /// of virtual time. Fluid time moves in whole model steps, so when
    /// `every` is not a multiple of the step a snapshot lands on the first
    /// boundary past each target.
    fn fluid_checkpoint_loop(
        &self,
        engine: &mut FluidEngine,
        plan: &CheckpointPlan,
    ) -> Result<(), CheckpointError> {
        let every = plan.every.as_nanos().min(u128::from(u64::MAX)) as u64;
        if every == 0 {
            return Err(CheckpointError::ZeroInterval);
        }
        let end = self.scenario().sim_time.as_nanos() as u64;
        let mut now = engine.now_ns();
        while now < end {
            let target = now.saturating_add(every - now % every).min(end);
            engine.run_until_ns(target);
            now = engine.now_ns();
            let snap = self.snapshot_fluid(engine)?;
            store::write_snapshot(&plan.dir, now, &snap)?;
        }
        Ok(())
    }

    /// [`run_with_checkpoints`](Self::run_with_checkpoints) for the fluid
    /// fidelity: run to completion, snapshotting periodically into
    /// `plan.dir`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on scenario, snapshot or filesystem failure, or
    /// [`CheckpointError::ZeroInterval`] when `plan.every` is zero.
    pub fn run_with_checkpoints_fluid(
        &self,
        plan: &CheckpointPlan,
    ) -> Result<(ExperimentResult, FluidEngine), CheckpointError> {
        fs::create_dir_all(&plan.dir)?;
        let mut engine = self.build_fluid()?;
        self.fluid_checkpoint_loop(&mut engine, plan)?;
        Ok((self.collect_fluid(&engine), engine))
    }

    /// [`resume_with_checkpoints`](Self::resume_with_checkpoints) for the
    /// fluid fidelity: resume from the newest readable checkpoint
    /// (falling back past corrupt or foreign files), then continue to
    /// completion, still checkpointing.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on scenario, snapshot or filesystem failure, or
    /// [`CheckpointError::ZeroInterval`] when `plan.every` is zero.
    pub fn resume_with_checkpoints_fluid(
        &self,
        plan: &CheckpointPlan,
    ) -> Result<(ExperimentResult, FluidEngine, Lineage), CheckpointError> {
        fs::create_dir_all(&plan.dir)?;
        let mut lineage = Lineage::default();
        let mut restored: Option<FluidEngine> = None;
        for path in store::list_newest_first(&plan.dir)? {
            let Ok(bytes) = fs::read(&path) else { continue };
            let Ok(snap) = Snapshot::from_bytes(&bytes) else {
                continue;
            };
            if let Ok((engine, meta)) = self.resume_fluid_from_snapshot(&snap) {
                lineage = Lineage {
                    parent_snapshot_hash: snap.container_hash(),
                    resume_step: meta.step,
                };
                restored = Some(engine);
                break;
            }
        }
        let mut engine = match restored {
            Some(e) => e,
            None => self.build_fluid()?,
        };
        self.fluid_checkpoint_loop(&mut engine, plan)?;
        Ok((self.collect_fluid(&engine), engine, lineage))
    }
}

/// A resumable multi-seed sweep: `trials` repetitions of `base` with
/// seeds derived from `master_seed` exactly like
/// [`Ensemble`](cavenet_stats::Ensemble) derives them.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The scenario every trial runs (its `seed` field is overridden).
    pub base: Scenario,
    /// Number of seeded repetitions.
    pub trials: usize,
    /// Master seed the per-trial seeds derive from.
    pub master_seed: u64,
}

impl Campaign {
    /// The scenario of trial `i` (0-based): `base` with the derived seed.
    pub fn trial_scenario(&self, i: usize) -> Scenario {
        let mut s = self.base.clone();
        s.seed = Ensemble::new(self.trials.max(1), self.master_seed).trial_seed(i);
        s
    }

    /// Run (or resume) every trial, checkpointing each into
    /// `dir/trial_<i>/` every `every` of virtual time. Trials that
    /// already completed in a previous invocation resume from their final
    /// checkpoint and finish in O(restore) work, so an interrupted sweep
    /// restarts from the last completed (trial, checkpoint) pair.
    ///
    /// Returns one `(result, lineage)` per trial, in trial order.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] from the first failing trial.
    pub fn run_resumable(
        &self,
        dir: &Path,
        every: Duration,
    ) -> Result<Vec<(ExperimentResult, Lineage)>, CheckpointError> {
        (0..self.trials.max(1))
            .map(|i| {
                let plan = CheckpointPlan {
                    every,
                    dir: dir.join(format!("trial_{i:04}")),
                };
                let exp = Experiment::new(self.trial_scenario(i));
                if exp.scenario().fidelity == Fidelity::Fluid {
                    exp.resume_with_checkpoints_fluid(&plan)
                        .map(|(result, _engine, lineage)| (result, lineage))
                } else {
                    exp.resume_with_checkpoints(cavenet_net::NoopObserver, &plan)
                        .map(|(result, _sim, lineage)| (result, lineage))
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Protocol;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cavenet_ckpt_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_scenario(seed: u64) -> Scenario {
        let mut s = Scenario::paper_table1(Protocol::Aodv);
        s.sim_time = Duration::from_secs(12);
        s.traffic.cbr.start = Duration::from_secs(2);
        s.traffic.cbr.stop = Duration::from_secs(10);
        s.traffic.senders = vec![1, 2];
        s.seed = seed;
        s
    }

    #[test]
    fn checkpointed_run_matches_plain_run() {
        let dir = scratch_dir("plain");
        let exp = Experiment::new(tiny_scenario(3));
        let plain = exp.run().unwrap();
        let plan = CheckpointPlan {
            every: Duration::from_secs(4),
            dir: dir.clone(),
        };
        let (ckpt, _sim) = exp
            .run_with_checkpoints(cavenet_net::NoopObserver, &plan)
            .unwrap();
        assert_eq!(plain.global, ckpt.global);
        assert_eq!(plain.total_received(), ckpt.total_received());
        // Snapshots at 4 s, 8 s, 12 s.
        assert_eq!(store::list_newest_first(&dir).unwrap().len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_falls_back_past_corrupt_checkpoints() {
        let dir = scratch_dir("corrupt");
        let exp = Experiment::new(tiny_scenario(5));
        let plain = exp.run().unwrap();
        let plan = CheckpointPlan {
            every: Duration::from_secs(4),
            dir: dir.clone(),
        };
        exp.run_with_checkpoints(cavenet_net::NoopObserver, &plan)
            .unwrap();
        // Vandalize the two newest checkpoints differently: one truncated,
        // one bit-flipped.
        let files = store::list_newest_first(&dir).unwrap();
        let newest = fs::read(&files[0]).unwrap();
        fs::write(&files[0], &newest[..newest.len() / 2]).unwrap();
        let mut second = fs::read(&files[1]).unwrap();
        let mid = second.len() / 2;
        second[mid] ^= 0xFF;
        fs::write(&files[1], &second).unwrap();

        let (result, _sim, lineage) = exp
            .resume_with_checkpoints(cavenet_net::NoopObserver, &plan)
            .unwrap();
        assert!(!lineage.is_cold(), "oldest checkpoint must still restore");
        assert_eq!(result.global, plain.global);
        assert_eq!(result.total_received(), plain.total_received());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_empty_dir_runs_cold() {
        let dir = scratch_dir("cold");
        let exp = Experiment::new(tiny_scenario(7));
        let plain = exp.run().unwrap();
        let plan = CheckpointPlan {
            every: Duration::from_secs(6),
            dir: dir.clone(),
        };
        let (result, _sim, lineage) = exp
            .resume_with_checkpoints(cavenet_net::NoopObserver, &plan)
            .unwrap();
        assert!(lineage.is_cold());
        assert_eq!(result.global, plain.global);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_snapshot_is_rejected_not_applied() {
        let exp_a = Experiment::new(tiny_scenario(1));
        let exp_b = Experiment::new(tiny_scenario(2));
        let (sim, rec) = exp_a.build_sim(cavenet_net::NoopObserver).unwrap();
        let snap = exp_a.snapshot_now(&sim, &rec).unwrap();
        let err = exp_b
            .resume_from_snapshot(cavenet_net::NoopObserver, &snap)
            .unwrap_err();
        assert!(
            matches!(
                err,
                CheckpointError::Snapshot(SnapshotError::MetaMismatch { .. })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn fluid_checkpointed_run_matches_plain_run() {
        let dir = scratch_dir("fluid_plain");
        let mut s = tiny_scenario(3);
        s.fidelity = Fidelity::Fluid;
        let exp = Experiment::new(s);
        let (_, plain_engine) = exp.run_fluid().unwrap();
        let plan = CheckpointPlan {
            every: Duration::from_secs(4),
            dir: dir.clone(),
        };
        let (ckpt, engine) = exp.run_with_checkpoints_fluid(&plan).unwrap();
        assert_eq!(engine.digest(), plain_engine.digest());
        assert_eq!(ckpt.total_received(), exp.run().unwrap().total_received());
        assert_eq!(store::list_newest_first(&dir).unwrap().len(), 3);

        // And a resume from those checkpoints reproduces the same digest.
        let (resumed, engine2, lineage) = exp.resume_with_checkpoints_fluid(&plan).unwrap();
        assert!(!lineage.is_cold());
        assert_eq!(engine2.digest(), plain_engine.digest());
        assert_eq!(resumed.total_received(), ckpt.total_received());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fluid_snapshot_refuses_the_exact_fidelity_and_vice_versa() {
        let mut fluid_s = tiny_scenario(9);
        fluid_s.fidelity = Fidelity::Fluid;
        let fluid_exp = Experiment::new(fluid_s.clone());
        let engine = fluid_exp.build_fluid().unwrap();
        let fluid_snap = fluid_exp.snapshot_fluid(&engine).unwrap();

        // The same scenario under the exact fidelity must reject it.
        let mut exact_s = fluid_s;
        exact_s.fidelity = Fidelity::Exact;
        let exact_exp = Experiment::new(exact_s);
        let err = exact_exp
            .resume_from_snapshot(cavenet_net::NoopObserver, &fluid_snap)
            .unwrap_err();
        assert!(
            matches!(
                err,
                CheckpointError::Snapshot(SnapshotError::MetaMismatch { .. })
            ),
            "{err:?}"
        );

        // And an exact snapshot must not restore into a fluid engine.
        let (sim, rec) = exact_exp.build_sim(cavenet_net::NoopObserver).unwrap();
        let exact_snap = exact_exp.snapshot_now(&sim, &rec).unwrap();
        let err = fluid_exp
            .resume_fluid_from_snapshot(&exact_snap)
            .unwrap_err();
        assert!(
            matches!(
                err,
                CheckpointError::Snapshot(SnapshotError::MetaMismatch { .. })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn fluid_campaign_resumes() {
        let dir = scratch_dir("fluid_campaign");
        let mut base = tiny_scenario(0);
        base.fidelity = Fidelity::Fluid;
        let campaign = Campaign {
            base,
            trials: 2,
            master_seed: 42,
        };
        let first = campaign
            .run_resumable(&dir, Duration::from_secs(4))
            .unwrap();
        assert!(first.iter().all(|(_, l)| l.is_cold()));
        let second = campaign
            .run_resumable(&dir, Duration::from_secs(4))
            .unwrap();
        for ((a, _), (b, lineage)) in first.iter().zip(&second) {
            assert!(!lineage.is_cold(), "second pass must resume");
            assert_eq!(a.total_received(), b.total_received());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_resumes_from_completed_trials() {
        let dir = scratch_dir("campaign");
        let mut base = tiny_scenario(0);
        base.sim_time = Duration::from_secs(8);
        base.traffic.cbr.stop = Duration::from_secs(6);
        let campaign = Campaign {
            base,
            trials: 3,
            master_seed: 42,
        };
        let first = campaign
            .run_resumable(&dir, Duration::from_secs(4))
            .unwrap();
        assert_eq!(first.len(), 3);
        assert!(first.iter().all(|(_, l)| l.is_cold()));
        // Seeds must differ across trials.
        assert_ne!(
            campaign.trial_scenario(0).seed,
            campaign.trial_scenario(1).seed
        );

        let second = campaign
            .run_resumable(&dir, Duration::from_secs(4))
            .unwrap();
        for ((a, _), (b, lineage)) in first.iter().zip(&second) {
            assert!(!lineage.is_cold(), "second pass must resume");
            assert_eq!(a.global, b.global);
            assert_eq!(a.total_received(), b.total_received());
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
