//! Resilience experiment: the Fig. 11 scenario under fault injection.
//!
//! Reruns the paper's protocol-comparison setup — CBR senders towards
//! receiver 0 on the 3000 m ring — three times per protocol: an unfaulted
//! baseline, a node-churn plan that crashes and later recovers relay
//! vehicles mid-run, and a burst-loss plan modelling a deep-fading window.
//! The outcome quantifies how gracefully each routing protocol degrades
//! (PDR and goodput relative to baseline) and how quickly it re-establishes
//! delivery after the first crash (time-to-reroute).
//!
//! All three runs share the scenario's seed, so differences between the
//! baseline and the faulted runs are attributable to the fault plan alone.

use std::collections::HashSet;
use std::time::Duration;

use cavenet_net::{DropCounts, FaultPlan, SimTime};

use crate::{Experiment, ExperimentResult, Protocol, Scenario, ScenarioError};

/// One scenario run reduced to the resilience metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceSummary {
    /// Mean per-flow packet delivery ratio.
    pub mean_pdr: f64,
    /// Aggregate application goodput in bits/s — unique payload delivered
    /// across all flows, averaged over the CBR traffic window. (Unlike the
    /// Figs. 8–10 goodput series this excludes duplicate receptions, so
    /// MAC-retry pathologies under loss cannot inflate it.)
    pub goodput_bps: f64,
    /// Unique data packets delivered across all flows.
    pub delivered: u64,
    /// Data packets originated across all flows.
    pub sent: u64,
    /// Routing control packets sent network-wide.
    pub control_packets: u64,
    /// Data-packet drops by terminal reason, straight from the engine's
    /// per-reason counters ([`Simulator::drop_counts`]) — no observer or
    /// event replay needed.
    ///
    /// [`Simulator::drop_counts`]: cavenet_net::Simulator::drop_counts
    pub drops: DropCounts,
}

impl ResilienceSummary {
    /// Reduce an experiment result; `window` is the CBR traffic window.
    pub fn from_result(r: &ExperimentResult, window: Duration) -> Self {
        let bits: f64 = r
            .senders
            .iter()
            .map(|s| s.metrics.bytes_received as f64 * 8.0)
            .sum();
        ResilienceSummary {
            mean_pdr: r.mean_pdr(),
            goodput_bps: bits / window.as_secs_f64().max(1e-9),
            delivered: r.total_received(),
            sent: r.total_sent(),
            control_packets: r.control_packets,
            drops: r.drops,
        }
    }

    /// Total data packets dropped, across all reasons.
    pub fn dropped(&self) -> u64 {
        self.drops.total()
    }
}

/// Per-protocol outcome of the resilience experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceOutcome {
    /// The protocol under test.
    pub protocol: Protocol,
    /// Unfaulted reference run.
    pub baseline: ResilienceSummary,
    /// Run under the node-churn plan ([`churn_plan`]).
    pub churn: ResilienceSummary,
    /// Run under the burst-loss plan ([`burst_plan`]).
    pub burst: ResilienceSummary,
    /// Time from the first crash until aggregate goodput recovers to half
    /// its pre-crash mean (1 s resolution); `None` when it never recovers
    /// within the run or no pre-crash traffic existed to compare against.
    pub time_to_reroute: Option<Duration>,
}

impl ResilienceOutcome {
    /// Fractional PDR loss under churn relative to baseline (0 = none,
    /// 1 = all delivery lost).
    pub fn churn_degradation(&self) -> f64 {
        degradation(self.baseline.mean_pdr, self.churn.mean_pdr)
    }

    /// Fractional PDR loss under burst loss relative to baseline.
    pub fn burst_degradation(&self) -> f64 {
        degradation(self.baseline.mean_pdr, self.burst.mean_pdr)
    }
}

fn degradation(baseline: f64, faulted: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        (1.0 - faulted / baseline).max(0.0)
    }
}

/// Relay vehicles eligible for churn: nodes that are neither senders nor
/// the receiver, spread evenly over the id space. Returns up to `want`.
fn relay_nodes(s: &Scenario, want: usize) -> Vec<usize> {
    let mut endpoints: HashSet<u32> = s.traffic.senders.iter().copied().collect();
    endpoints.insert(s.traffic.receiver);
    let candidates: Vec<usize> = (0..s.nodes)
        .filter(|&i| !endpoints.contains(&(i as u32)))
        .collect();
    if candidates.is_empty() {
        return Vec::new();
    }
    let want = want.min(candidates.len());
    let mut picked: Vec<usize> = (0..want)
        .map(|k| candidates[k * (candidates.len() - 1) / want.max(2).saturating_sub(1)])
        .collect();
    picked.dedup();
    picked
}

/// The standard node-churn plan for `s`: three relay vehicles crash at
/// staggered times (30 %, 40 %, 50 % of the run) and recover 25 % of the
/// run later. Traffic endpoints are never crashed, so every flow keeps its
/// source and sink and any delivery dip is a routing failure, not an
/// application one.
pub fn churn_plan(s: &Scenario) -> FaultPlan {
    let t = s.sim_time.as_secs_f64();
    let mut plan = FaultPlan::new();
    for (k, node) in relay_nodes(s, 3).into_iter().enumerate() {
        let crash = (0.30 + 0.10 * k as f64) * t;
        let recover = crash + 0.25 * t;
        plan = plan
            .crash(SimTime::from_secs_f64(crash), node)
            .recover(SimTime::from_secs_f64(recover), node);
    }
    plan
}

/// The standard burst-loss plan for `s`: a network-wide deep-fading window
/// covering 40 %–60 % of the run in which every frame is lost with
/// probability 0.5 on top of normal propagation.
pub fn burst_plan(s: &Scenario) -> FaultPlan {
    let t = s.sim_time.as_secs_f64();
    FaultPlan::new().burst(
        SimTime::from_secs_f64(0.40 * t),
        SimTime::from_secs_f64(0.60 * t),
        0.5,
    )
}

/// Time from the first crash in `plan` until the aggregate goodput of `r`
/// recovers to at least half its pre-crash mean, at the 1 s resolution of
/// the goodput series.
pub fn time_to_reroute(
    r: &ExperimentResult,
    plan: &FaultPlan,
    traffic_start: Duration,
) -> Option<Duration> {
    let first_crash = plan
        .down_windows()
        .into_iter()
        .map(|(_, start, _)| start)
        .min()?;
    let bins = r
        .senders
        .iter()
        .map(|s| s.goodput_series.len())
        .max()
        .unwrap_or(0);
    let aggregate: Vec<f64> = (0..bins)
        .map(|i| {
            r.senders
                .iter()
                .filter_map(|s| s.goodput_series.get(i))
                .sum()
        })
        .collect();
    let start_bin = traffic_start.as_secs_f64().floor() as usize;
    let crash_bin = (first_crash.as_secs_f64().floor() as usize).min(bins);
    if crash_bin <= start_bin {
        return None;
    }
    let pre: &[f64] = &aggregate[start_bin..crash_bin];
    let pre_mean = pre.iter().sum::<f64>() / pre.len() as f64;
    if pre_mean <= 0.0 {
        return None;
    }
    let threshold = 0.5 * pre_mean;
    aggregate[crash_bin..]
        .iter()
        .position(|&g| g >= threshold)
        .map(|k| Duration::from_secs(k as u64))
}

/// Runs one protocol's baseline / churn / burst triple.
#[derive(Debug, Clone)]
pub struct Resilience {
    base: Scenario,
}

impl Resilience {
    /// Wrap a base scenario. Its own `fault_plan` is treated as the
    /// baseline (normally empty); the churn and burst runs replace it.
    pub fn new(base: Scenario) -> Self {
        Resilience { base }
    }

    /// The paper's Fig. 11 scenario (Table 1, 8 senders → receiver 0) for
    /// the given protocol.
    pub fn paper_fig11(protocol: Protocol) -> Self {
        Resilience::new(Scenario::paper_table1(protocol))
    }

    /// The base scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.base
    }

    /// The base scenario with the standard churn plan applied.
    pub fn churn_scenario(&self) -> Scenario {
        let mut s = self.base.clone();
        s.fault_plan = churn_plan(&self.base);
        s
    }

    /// The base scenario with the standard burst-loss plan applied.
    pub fn burst_scenario(&self) -> Scenario {
        let mut s = self.base.clone();
        s.fault_plan = burst_plan(&self.base);
        s
    }

    /// Run the three scenarios and reduce them to a [`ResilienceOutcome`].
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] when the base scenario is inconsistent or
    /// a fault plan fails validation.
    pub fn run(&self) -> Result<ResilienceOutcome, ScenarioError> {
        let window = self
            .base
            .traffic
            .cbr
            .stop
            .saturating_sub(self.base.traffic.cbr.start);
        let churn_scenario = self.churn_scenario();
        let baseline = Experiment::new(self.base.clone()).run()?;
        let churn = Experiment::new(churn_scenario.clone()).run()?;
        let burst = Experiment::new(self.burst_scenario()).run()?;
        let time_to_reroute = time_to_reroute(
            &churn,
            &churn_scenario.fault_plan,
            self.base.traffic.cbr.start,
        );
        Ok(ResilienceOutcome {
            protocol: self.base.protocol,
            baseline: ResilienceSummary::from_result(&baseline, window),
            churn: ResilienceSummary::from_result(&churn, window),
            burst: ResilienceSummary::from_result(&burst, window),
            time_to_reroute,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(protocol: Protocol) -> Resilience {
        let mut s = Scenario::paper_table1(protocol);
        s.sim_time = Duration::from_secs(30);
        s.traffic.cbr.start = Duration::from_secs(5);
        s.traffic.cbr.stop = Duration::from_secs(25);
        s.traffic.senders = vec![1, 2, 3];
        Resilience::new(s)
    }

    #[test]
    fn plans_validate_against_their_scenario() {
        let r = quick(Protocol::Aodv);
        assert!(r.churn_scenario().validate().is_ok());
        assert!(r.burst_scenario().validate().is_ok());
        assert!(!r.churn_scenario().fault_plan.is_empty());
        assert!(!r.burst_scenario().fault_plan.is_empty());
    }

    #[test]
    fn churn_never_touches_traffic_endpoints() {
        let r = quick(Protocol::Aodv);
        let plan = churn_plan(r.scenario());
        for (node, _, _) in plan.down_windows() {
            assert!(
                node > 3,
                "churn crashed traffic endpoint {node} (senders 1-3, receiver 0)"
            );
        }
        assert_eq!(plan.down_windows().len(), 3);
    }

    #[test]
    fn aodv_triple_runs_and_degrades_gracefully() {
        let out = quick(Protocol::Aodv).run().unwrap();
        assert!(out.baseline.mean_pdr > 0.3, "baseline must deliver");
        assert!(out.churn.delivered > 0, "churn must not kill all delivery");
        assert!(out.burst.delivered > 0, "burst must not kill all delivery");
        // Burst loss of 0.5 over a fifth of the run must cost something.
        assert!(
            out.burst.mean_pdr <= out.baseline.mean_pdr,
            "burst {:.3} vs baseline {:.3}",
            out.burst.mean_pdr,
            out.baseline.mean_pdr
        );
        assert!((0.0..=1.0).contains(&out.churn_degradation()));
        assert!((0.0..=1.0).contains(&out.burst_degradation()));
    }

    #[test]
    fn resilience_runs_are_deterministic() {
        let a = quick(Protocol::Aodv).run().unwrap();
        let b = quick(Protocol::Aodv).run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn time_to_reroute_handles_empty_plan() {
        let r = quick(Protocol::Aodv);
        let result = Experiment::new(r.scenario().clone()).run().unwrap();
        assert_eq!(
            time_to_reroute(&result, &FaultPlan::new(), Duration::from_secs(5)),
            None
        );
    }
}
