//! # cavenet-core — the CAVENET pipeline, end to end
//!
//! This crate is the public face of CAVENET-RS. It wires the two blocks of
//! the paper's architecture (Fig. 2) together:
//!
//! 1. the **Behavioural Analyzer** — the Nagel–Schreckenberg cellular
//!    automaton ([`cavenet_ca`]) embedded in the plane and exported as a
//!    mobility trace ([`cavenet_mobility`]);
//! 2. the **Communication Protocol Simulator** — the discrete-event
//!    wireless simulator ([`cavenet_net`]) running a MANET routing protocol
//!    ([`cavenet_routing`]) under CBR traffic ([`cavenet_traffic`]).
//!
//! The central types are [`Scenario`] — a declarative description of an
//! experiment, whose [`Scenario::paper_table1`] constructor reproduces the
//! paper's Table 1 exactly — and [`Experiment`], which runs a scenario and
//! returns per-sender goodput series, packet delivery ratios, delays and
//! control-overhead counters (the data behind the paper's Figs. 8–11).
//!
//! ```no_run
//! use cavenet_core::{Protocol, Scenario, Experiment};
//!
//! let scenario = Scenario::paper_table1(Protocol::Dymo);
//! let result = Experiment::new(scenario).run().unwrap();
//! for sender in 1..=8u32 {
//!     println!("sender {sender}: PDR {:.2}", result.pdr_of_sender(sender).unwrap_or(0.0));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpointing;
mod experiment;
mod mobility_adapter;
mod protocol;
mod resilience;
mod scenario;

pub use checkpointing::{scenario_identity, Campaign, CheckpointError, CheckpointPlan, Lineage};
pub use experiment::{Experiment, ExperimentResult, SenderReport};
pub use mobility_adapter::TraceMobility;
pub use protocol::Protocol;
pub use resilience::{
    burst_plan, churn_plan, time_to_reroute, Resilience, ResilienceOutcome, ResilienceSummary,
};
pub use scenario::{MobilitySource, Scenario, ScenarioError, TrafficPattern};

// The fidelity knob and its backends live in `cavenet-net`; surface them
// here so scenario authors select a backend without extra dependencies.
pub use cavenet_net::Fidelity;

// Re-export the sub-crates so downstream users need a single dependency.
pub use cavenet_ca as ca;
pub use cavenet_checkpoint as checkpoint;
pub use cavenet_fluid as fluid;
pub use cavenet_mobility as mobility;
pub use cavenet_net as net;
pub use cavenet_routing as routing;
pub use cavenet_stats as stats;
pub use cavenet_traffic as traffic;
