//! Constant Bit Rate source and sink applications.

use std::time::Duration;

use cavenet_net::{
    Application, FlowId, NodeApi, NodeId, Packet, WireError, WireReader, WireWriter,
};

use crate::{SharedRecorder, TrafficRecorder};

/// CBR flow configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CbrConfig {
    /// Packets per second.
    pub rate_pps: f64,
    /// Payload bytes per packet.
    pub packet_size: u32,
    /// When the source starts emitting.
    pub start: Duration,
    /// When the source stops.
    pub stop: Duration,
    /// Flow discriminator (port).
    pub port: u16,
}

impl CbrConfig {
    /// The paper's Table 1 traffic: 5 packets/s of 512 bytes, active from
    /// 10 s to 90 s.
    pub fn paper_default() -> Self {
        CbrConfig {
            rate_pps: 5.0,
            packet_size: 512,
            start: Duration::from_secs(10),
            stop: Duration::from_secs(90),
            port: 0,
        }
    }

    /// Interval between packets.
    pub fn interval(&self) -> Duration {
        Duration::from_secs_f64(1.0 / self.rate_pps.max(1e-9))
    }
}

impl Default for CbrConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A CBR traffic source ([`Application`]): emits fixed-size packets at a
/// fixed rate toward one destination, recording each emission.
#[derive(Debug)]
pub struct CbrSource {
    dst: NodeId,
    config: CbrConfig,
    recorder: SharedRecorder,
    seq: u32,
}

impl CbrSource {
    /// A source sending to `dst` with the given configuration, logging into
    /// `recorder`.
    pub fn new(dst: NodeId, config: CbrConfig, recorder: SharedRecorder) -> Self {
        CbrSource {
            dst,
            config,
            recorder,
            seq: 0,
        }
    }
}

impl Application for CbrSource {
    fn start(&mut self, api: &mut NodeApi<'_>) {
        api.schedule(self.config.start, 0);
    }

    fn handle_timer(&mut self, api: &mut NodeApi<'_>, _token: u64) {
        let now = api.now();
        if now.as_secs_f64() >= self.config.stop.as_secs_f64() {
            return;
        }
        let flow = FlowId::new(api.id(), self.dst, self.config.port);
        let packet = Packet::data(flow, self.seq, self.config.packet_size, now);
        self.recorder
            .borrow_mut()
            .record_sent(flow, self.seq, now, self.config.packet_size);
        api.originate(packet);
        self.seq += 1;
        api.schedule(self.config.interval(), 0);
    }

    fn capture_state(&self, w: &mut WireWriter) -> Result<(), WireError> {
        // Only the send cursor is dynamic; dst/config are rebuilt by the
        // scenario factory and the recorder ledger is snapshotted
        // separately (it lives outside the simulator).
        w.put_u32(self.seq);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut WireReader<'_>) -> Result<(), WireError> {
        self.seq = r.get_u32()?;
        Ok(())
    }
}

/// A CBR sink ([`Application`]): records every data packet that arrives.
#[derive(Debug)]
pub struct CbrSink {
    recorder: SharedRecorder,
}

impl CbrSink {
    /// A sink logging into `recorder`.
    pub fn new(recorder: SharedRecorder) -> Self {
        CbrSink { recorder }
    }

    /// Convenience: build a fresh recorder and a sink writing into it.
    pub fn with_fresh_recorder() -> (SharedRecorder, Self) {
        let r = TrafficRecorder::new_shared();
        let sink = CbrSink::new(std::rc::Rc::clone(&r));
        (r, sink)
    }
}

impl Application for CbrSink {
    fn handle_packet(&mut self, api: &mut NodeApi<'_>, packet: &Packet) {
        if let Some(d) = packet.body.as_data() {
            self.recorder.borrow_mut().record_received(
                d.flow,
                d.seq,
                api.now(),
                d.sent_at,
                packet.size_bytes,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cavenet_net::{ScenarioConfig, Simulator, StaticMobility};
    use std::rc::Rc;

    #[test]
    fn paper_default_matches_table1() {
        let c = CbrConfig::paper_default();
        assert_eq!(c.rate_pps, 5.0);
        assert_eq!(c.packet_size, 512);
        assert_eq!(c.start, Duration::from_secs(10));
        assert_eq!(c.stop, Duration::from_secs(90));
        assert_eq!(c.interval(), Duration::from_millis(200));
    }

    #[test]
    fn source_respects_start_stop_window() {
        let recorder = TrafficRecorder::new_shared();
        let cfg = CbrConfig {
            rate_pps: 10.0,
            packet_size: 100,
            start: Duration::from_secs(1),
            stop: Duration::from_secs(3),
            port: 0,
        };
        let mut sim = Simulator::builder(ScenarioConfig::default())
            .nodes(2)
            .mobility(Box::new(StaticMobility::line(2, 100.0)))
            .app(
                0,
                Box::new(CbrSource::new(NodeId(1), cfg, Rc::clone(&recorder))),
            )
            .app(1, Box::new(CbrSink::new(Rc::clone(&recorder))))
            .build();
        sim.run_until_secs(5.0);
        let flow = FlowId::new(NodeId(0), NodeId(1), 0);
        let m = recorder.borrow().metrics(flow);
        // 2 s active window at 10 pps = 20 packets (±1 boundary).
        assert!((19..=21).contains(&m.sent), "sent {}", m.sent);
        assert_eq!(m.sent, m.received, "single hop should deliver all");
        // Nothing outside the window.
        let series =
            recorder
                .borrow()
                .goodput_series(flow, Duration::from_secs(1), Duration::from_secs(5));
        assert_eq!(series[0], 0.0);
        assert!(series[4].abs() < 1e-9);
        assert!(series[1] > 0.0);
    }

    #[test]
    fn end_to_end_goodput_magnitude() {
        // Table-1-style single-hop CBR: 5 pps × 512 B = 20480 b/s payload.
        let recorder = TrafficRecorder::new_shared();
        let cfg = CbrConfig {
            start: Duration::from_secs(1),
            stop: Duration::from_secs(11),
            ..CbrConfig::paper_default()
        };
        let mut sim = Simulator::builder(ScenarioConfig::default())
            .nodes(2)
            .mobility(Box::new(StaticMobility::line(2, 100.0)))
            .app(
                0,
                Box::new(CbrSource::new(NodeId(1), cfg, Rc::clone(&recorder))),
            )
            .app(1, Box::new(CbrSink::new(Rc::clone(&recorder))))
            .build();
        sim.run_until_secs(12.0);
        let flow = FlowId::new(NodeId(0), NodeId(1), 0);
        let m = recorder.borrow().metrics(flow);
        assert!((m.pdr().unwrap() - 1.0).abs() < 1e-9);
        let g = m.goodput_bps();
        assert!(
            (19000.0..22000.0).contains(&g),
            "expected ≈20480 b/s, got {g}"
        );
    }

    #[test]
    fn sink_with_fresh_recorder() {
        let (r, _sink) = CbrSink::with_fresh_recorder();
        assert!(r.borrow().flows().is_empty());
    }

    #[test]
    fn source_snapshot_round_trips_send_cursor() {
        let recorder = TrafficRecorder::new_shared();
        let mut src = CbrSource::new(NodeId(1), CbrConfig::paper_default(), Rc::clone(&recorder));
        src.seq = 37;
        let mut w = WireWriter::new();
        Application::capture_state(&src, &mut w).expect("capture");
        let bytes = w.into_bytes();

        let mut fresh = CbrSource::new(NodeId(1), CbrConfig::paper_default(), recorder);
        let mut r = WireReader::new(&bytes);
        Application::restore_state(&mut fresh, &mut r).expect("restore");
        r.finish().expect("whole stream consumed");
        assert_eq!(fresh.seq, 37, "send cursor must survive the round trip");
    }
}
