//! The shared traffic ledger and per-flow metrics.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use cavenet_net::snapshot::{read_node_id, read_time, write_node_id, write_time};
use cavenet_net::{FlowId, SimTime, WireError, WireReader, WireWriter};

/// A single-threaded shared handle to a [`TrafficRecorder`].
pub type SharedRecorder = Rc<RefCell<TrafficRecorder>>;

#[derive(Debug, Clone, Copy)]
struct SentRecord {
    seq: u32,
    at: SimTime,
    bytes: u32,
}

#[derive(Debug, Clone, Copy)]
struct RecvRecord {
    seq: u32,
    at: SimTime,
    sent_at: SimTime,
    bytes: u32,
}

/// Records every CBR packet sent and received, per flow.
///
/// Sources and sinks share one recorder through [`SharedRecorder`]; after
/// the run, [`TrafficRecorder::metrics`] summarizes each flow.
#[derive(Debug, Default)]
pub struct TrafficRecorder {
    sent: HashMap<FlowId, Vec<SentRecord>>,
    received: HashMap<FlowId, Vec<RecvRecord>>,
}

impl TrafficRecorder {
    /// A fresh recorder behind a shared handle.
    pub fn new_shared() -> SharedRecorder {
        Rc::new(RefCell::new(TrafficRecorder::default()))
    }

    /// Record a packet emission.
    pub fn record_sent(&mut self, flow: FlowId, seq: u32, at: SimTime, bytes: u32) {
        self.sent
            .entry(flow)
            .or_default()
            .push(SentRecord { seq, at, bytes });
    }

    /// Record a packet arrival at its destination.
    pub fn record_received(
        &mut self,
        flow: FlowId,
        seq: u32,
        at: SimTime,
        sent_at: SimTime,
        bytes: u32,
    ) {
        self.received.entry(flow).or_default().push(RecvRecord {
            seq,
            at,
            sent_at,
            bytes,
        });
    }

    /// All flows with any activity, sorted.
    pub fn flows(&self) -> Vec<FlowId> {
        let mut v: Vec<FlowId> = self
            .sent
            .keys()
            .chain(self.received.keys())
            .copied()
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Metrics for one flow.
    pub fn metrics(&self, flow: FlowId) -> FlowMetrics {
        let sent = self.sent.get(&flow).map_or(&[][..], |v| v.as_slice());
        let received = self.received.get(&flow).map_or(&[][..], |v| v.as_slice());
        let mut unique = std::collections::HashSet::new();
        let mut duplicates = 0u64;
        let mut delay_sum = Duration::ZERO;
        let mut max_delay = Duration::ZERO;
        for r in received {
            if unique.insert(r.seq) {
                let d = r.at.saturating_since(r.sent_at);
                delay_sum += d;
                max_delay = max_delay.max(d);
            } else {
                duplicates += 1;
            }
        }
        FlowMetrics {
            flow,
            sent: sent.len() as u64,
            received: unique.len() as u64,
            duplicates,
            bytes_sent: sent.iter().map(|s| u64::from(s.bytes)).sum(),
            bytes_received: received
                .iter()
                .filter(|r| unique.contains(&r.seq))
                .map(|r| u64::from(r.bytes))
                .sum(),
            mean_delay: if unique.is_empty() {
                None
            } else {
                Some(delay_sum / unique.len() as u32)
            },
            max_delay: if unique.is_empty() {
                None
            } else {
                Some(max_delay)
            },
            first_sent: sent.first().map(|s| s.at),
            last_received: received.last().map(|r| r.at),
        }
    }

    /// Goodput of `flow` binned into windows of `bin` seconds over
    /// `[0, duration]`: element `i` is the rate in bits/second of
    /// application payload received during `[i·bin, (i+1)·bin)` — the
    /// quantity on the Z axis of the paper's Figs. 8–10.
    pub fn goodput_series(&self, flow: FlowId, bin: Duration, duration: Duration) -> Vec<f64> {
        let bins = (duration.as_secs_f64() / bin.as_secs_f64()).ceil() as usize;
        let mut out = vec![0.0; bins];
        if let Some(recv) = self.received.get(&flow) {
            for r in recv {
                let i = (r.at.as_secs_f64() / bin.as_secs_f64()) as usize;
                if i < bins {
                    out[i] += f64::from(r.bytes) * 8.0;
                }
            }
        }
        for v in &mut out {
            *v /= bin.as_secs_f64();
        }
        out
    }

    /// Serialize both ledgers, flows in sorted order and records in
    /// arrival order, so checkpoints are independent of `HashMap` iteration
    /// order and resume with counters and delay samples intact.
    pub fn capture(&self, w: &mut WireWriter) {
        fn write_flow(w: &mut WireWriter, f: FlowId) {
            write_node_id(w, f.src);
            write_node_id(w, f.dst);
            w.put_u16(f.port);
        }
        let mut sent_flows: Vec<FlowId> = self.sent.keys().copied().collect();
        sent_flows.sort();
        w.put_usize(sent_flows.len());
        for f in sent_flows {
            write_flow(w, f);
            let records = &self.sent[&f];
            w.put_usize(records.len());
            for s in records {
                w.put_u32(s.seq);
                write_time(w, s.at);
                w.put_u32(s.bytes);
            }
        }
        let mut recv_flows: Vec<FlowId> = self.received.keys().copied().collect();
        recv_flows.sort();
        w.put_usize(recv_flows.len());
        for f in recv_flows {
            write_flow(w, f);
            let records = &self.received[&f];
            w.put_usize(records.len());
            for r in records {
                w.put_u32(r.seq);
                write_time(w, r.at);
                write_time(w, r.sent_at);
                w.put_u32(r.bytes);
            }
        }
    }

    /// Rebuild both ledgers from a [`TrafficRecorder::capture`] stream.
    ///
    /// # Errors
    ///
    /// [`WireError`] on a truncated or malformed stream.
    pub fn restore(&mut self, r: &mut WireReader<'_>) -> Result<(), WireError> {
        fn read_flow(r: &mut WireReader<'_>) -> Result<FlowId, WireError> {
            Ok(FlowId::new(
                read_node_id(r)?,
                read_node_id(r)?,
                r.get_u16()?,
            ))
        }
        self.sent.clear();
        for _ in 0..r.get_usize()? {
            let flow = read_flow(r)?;
            let n = r.get_usize()?;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                records.push(SentRecord {
                    seq: r.get_u32()?,
                    at: read_time(r)?,
                    bytes: r.get_u32()?,
                });
            }
            self.sent.insert(flow, records);
        }
        self.received.clear();
        for _ in 0..r.get_usize()? {
            let flow = read_flow(r)?;
            let n = r.get_usize()?;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                records.push(RecvRecord {
                    seq: r.get_u32()?,
                    at: read_time(r)?,
                    sent_at: read_time(r)?,
                    bytes: r.get_u32()?,
                });
            }
            self.received.insert(flow, records);
        }
        Ok(())
    }

    /// Aggregate packet delivery ratio over all flows (unique receptions /
    /// packets sent); `None` when nothing was sent.
    pub fn total_pdr(&self) -> Option<f64> {
        let flows = self.flows();
        let mut sent = 0u64;
        let mut received = 0u64;
        for f in flows {
            let m = self.metrics(f);
            sent += m.sent;
            received += m.received;
        }
        if sent == 0 {
            None
        } else {
            Some(received as f64 / sent as f64)
        }
    }
}

/// Per-flow summary statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowMetrics {
    /// The flow.
    pub flow: FlowId,
    /// Packets the source emitted.
    pub sent: u64,
    /// Unique packets the destination received.
    pub received: u64,
    /// Duplicate receptions (routing pathologies).
    pub duplicates: u64,
    /// Payload bytes emitted.
    pub bytes_sent: u64,
    /// Payload bytes received (unique).
    pub bytes_received: u64,
    /// Mean end-to-end delay of unique receptions.
    pub mean_delay: Option<Duration>,
    /// Largest end-to-end delay of a unique reception — dominated by
    /// packets buffered while a reactive protocol (re)discovers a route, so
    /// it measures route-acquisition time.
    pub max_delay: Option<Duration>,
    /// When the first packet left the source.
    pub first_sent: Option<SimTime>,
    /// When the last packet arrived.
    pub last_received: Option<SimTime>,
}

impl FlowMetrics {
    /// Packet delivery ratio (Fig. 11's Y axis); `None` if nothing was
    /// sent.
    pub fn pdr(&self) -> Option<f64> {
        if self.sent == 0 {
            None
        } else {
            Some(self.received as f64 / self.sent as f64)
        }
    }

    /// Average goodput in bits/second over the flow's active span.
    pub fn goodput_bps(&self) -> f64 {
        match (self.first_sent, self.last_received) {
            (Some(a), Some(b)) if b > a => {
                self.bytes_received as f64 * 8.0 / (b.saturating_since(a)).as_secs_f64()
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cavenet_net::NodeId;

    fn flow() -> FlowId {
        FlowId::new(NodeId(1), NodeId(0), 0)
    }

    #[test]
    fn empty_recorder() {
        let r = TrafficRecorder::default();
        assert!(r.flows().is_empty());
        assert_eq!(r.total_pdr(), None);
        let m = r.metrics(flow());
        assert_eq!(m.sent, 0);
        assert_eq!(m.pdr(), None);
        assert_eq!(m.goodput_bps(), 0.0);
    }

    #[test]
    fn pdr_computation() {
        let mut r = TrafficRecorder::default();
        for seq in 0..10 {
            r.record_sent(flow(), seq, SimTime::from_secs(seq as u64), 512);
        }
        for seq in 0..7 {
            r.record_received(
                flow(),
                seq,
                SimTime::from_secs(seq as u64 + 1),
                SimTime::from_secs(seq as u64),
                512,
            );
        }
        let m = r.metrics(flow());
        assert_eq!(m.sent, 10);
        assert_eq!(m.received, 7);
        assert!((m.pdr().unwrap() - 0.7).abs() < 1e-12);
        assert_eq!(r.total_pdr(), Some(0.7));
    }

    #[test]
    fn duplicates_counted_once() {
        let mut r = TrafficRecorder::default();
        r.record_sent(flow(), 0, SimTime::ZERO, 512);
        r.record_received(flow(), 0, SimTime::from_secs(1), SimTime::ZERO, 512);
        r.record_received(flow(), 0, SimTime::from_secs(2), SimTime::ZERO, 512);
        let m = r.metrics(flow());
        assert_eq!(m.received, 1);
        assert_eq!(m.duplicates, 1);
        assert!((m.pdr().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_delay() {
        let mut r = TrafficRecorder::default();
        r.record_sent(flow(), 0, SimTime::ZERO, 512);
        r.record_sent(flow(), 1, SimTime::from_secs(1), 512);
        r.record_received(flow(), 0, SimTime::from_millis(100), SimTime::ZERO, 512);
        r.record_received(
            flow(),
            1,
            SimTime::from_millis(1300),
            SimTime::from_secs(1),
            512,
        );
        let m = r.metrics(flow());
        assert_eq!(m.mean_delay, Some(Duration::from_millis(200)));
    }

    #[test]
    fn goodput_series_bins() {
        let mut r = TrafficRecorder::default();
        // 512 B at t=0.5 and t=1.5.
        r.record_received(flow(), 0, SimTime::from_millis(500), SimTime::ZERO, 512);
        r.record_received(flow(), 1, SimTime::from_millis(1500), SimTime::ZERO, 512);
        let s = r.goodput_series(flow(), Duration::from_secs(1), Duration::from_secs(3));
        assert_eq!(s.len(), 3);
        assert!((s[0] - 4096.0).abs() < 1e-9);
        assert!((s[1] - 4096.0).abs() < 1e-9);
        assert_eq!(s[2], 0.0);
    }

    #[test]
    fn goodput_total() {
        let mut r = TrafficRecorder::default();
        r.record_sent(flow(), 0, SimTime::ZERO, 512);
        r.record_received(flow(), 0, SimTime::from_secs(1), SimTime::ZERO, 512);
        let m = r.metrics(flow());
        // 512 B over 1 s = 4096 b/s.
        assert!((m.goodput_bps() - 4096.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let mut r = TrafficRecorder::default();
        let f1 = FlowId::new(NodeId(0), NodeId(3), 0);
        let f2 = FlowId::new(NodeId(2), NodeId(3), 7);
        for seq in 0..5 {
            r.record_sent(f1, seq, SimTime::from_millis(200 * u64::from(seq)), 512);
        }
        r.record_sent(f2, 0, SimTime::from_secs(1), 100);
        for seq in 0..3 {
            r.record_received(
                f1,
                seq,
                SimTime::from_millis(200 * u64::from(seq) + 40),
                SimTime::from_millis(200 * u64::from(seq)),
                512,
            );
        }
        let mut w = WireWriter::new();
        r.capture(&mut w);
        let bytes = w.into_bytes();

        let mut restored = TrafficRecorder::default();
        let mut reader = WireReader::new(&bytes);
        restored.restore(&mut reader).expect("restore");
        reader.finish().expect("whole stream consumed");
        assert_eq!(r.metrics(f1), restored.metrics(f1));
        assert_eq!(r.metrics(f2), restored.metrics(f2));

        let mut w2 = WireWriter::new();
        restored.capture(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "round trip not bit-identical");
    }

    #[test]
    fn restore_rejects_truncated_stream() {
        let mut r = TrafficRecorder::default();
        r.record_sent(FlowId::new(NodeId(0), NodeId(1), 0), 0, SimTime::ZERO, 512);
        let mut w = WireWriter::new();
        r.capture(&mut w);
        let bytes = w.into_bytes();
        let mut restored = TrafficRecorder::default();
        let mut reader = WireReader::new(&bytes[..bytes.len() - 3]);
        assert!(matches!(
            restored.restore(&mut reader),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn flows_lists_both_directions() {
        let mut r = TrafficRecorder::default();
        let f1 = FlowId::new(NodeId(1), NodeId(0), 0);
        let f2 = FlowId::new(NodeId(2), NodeId(0), 0);
        r.record_sent(f1, 0, SimTime::ZERO, 10);
        r.record_received(f2, 0, SimTime::ZERO, SimTime::ZERO, 10);
        assert_eq!(r.flows(), vec![f1, f2]);
    }
}
