//! # cavenet-traffic — application traffic agents and flow metrics
//!
//! The paper's protocol evaluation (§IV-C) uses Constant Bit Rate traffic:
//! "5 packets per second as a Constant Bit Rate (CBR) traffic were
//! transmitted between 10 seconds and 90 seconds", 512-byte packets, from
//! senders 1–8 toward receiver 0. This crate provides:
//!
//! * [`CbrSource`] / [`CbrSink`] — the CBR agents, implementing
//!   [`cavenet_net::Application`];
//! * [`TrafficRecorder`] — a shared, single-threaded flow ledger every agent
//!   writes into;
//! * [`FlowMetrics`] — goodput (total and time-binned series, as in the
//!   paper's Figs. 8–10), packet delivery ratio (Fig. 11), mean end-to-end
//!   delay, and duplicate accounting — the delay and overhead metrics cover
//!   the paper's "future work" list too.
//!
//! ```
//! use cavenet_traffic::{CbrConfig, TrafficRecorder};
//! use cavenet_net::{FlowId, NodeId};
//!
//! let recorder = TrafficRecorder::new_shared();
//! let cfg = CbrConfig::paper_default(); // 5 pkt/s × 512 B, 10–90 s
//! assert_eq!(cfg.packet_size, 512);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cbr;
mod recorder;

pub use cbr::{CbrConfig, CbrSink, CbrSource};
pub use recorder::{FlowMetrics, SharedRecorder, TrafficRecorder};
