//! Deterministic jittered exponential backoff.
//!
//! Retry delays must be reproducible — a campaign replayed with the same
//! master seed schedules the same retries — so jitter is not drawn from a
//! global RNG. Each delay is a pure function of `(campaign seed, trial
//! key, attempt)`: the tuple is folded through FNV-1a into a [`SimRng`]
//! seed, and that stream's first draw scales the exponential envelope.
//! Different trials de-synchronize (no thundering herd after a correlated
//! failure), yet every delay is stable across processes and platforms.

use std::time::Duration;

use cavenet_rng::fnv::Fnv64;
use cavenet_rng::SimRng;

use crate::ledger::TrialKey;

/// Retry delay policy: exponential envelope with deterministic jitter.
#[derive(Debug, Clone, PartialEq)]
pub struct BackoffPolicy {
    /// Envelope of the first retry (attempt 1 → 2).
    pub base: Duration,
    /// Upper bound the envelope saturates at.
    pub cap: Duration,
    /// Jitter fraction in `[0, 1]`: the delay is the envelope scaled by a
    /// factor drawn uniformly from `[1 - jitter, 1]`.
    pub jitter: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
            jitter: 0.5,
        }
    }
}

impl BackoffPolicy {
    /// The undithered exponential envelope after `attempt` failures
    /// (1-based): `base * 2^(attempt-1)`, saturating at `cap`. Monotone
    /// non-decreasing in `attempt`.
    pub fn envelope(&self, attempt: u64) -> Duration {
        let doublings = attempt.saturating_sub(1).min(32) as u32;
        let grown = self
            .base
            .checked_mul(1u32 << doublings.min(31))
            .unwrap_or(self.cap);
        grown.min(self.cap)
    }

    /// The delay before re-queuing `key` after its `attempt`-th failure
    /// (1-based), under campaign seed `campaign_seed`.
    ///
    /// Deterministic: equal inputs give equal delays, in any process.
    /// Bounded: the result never exceeds [`envelope`](Self::envelope) (and
    /// so never exceeds `cap`), and never falls below
    /// `envelope * (1 - jitter)`.
    pub fn delay(&self, campaign_seed: u64, key: TrialKey, attempt: u64) -> Duration {
        let envelope = self.envelope(attempt);
        let mut mix = Fnv64::new();
        mix.write(&campaign_seed.to_le_bytes());
        mix.write(&key.scenario_hash.to_le_bytes());
        mix.write(&key.seed.to_le_bytes());
        mix.write(&attempt.to_le_bytes());
        let mut rng = SimRng::seed_from_u64(mix.finish());
        let jitter = self.jitter.clamp(0.0, 1.0);
        let factor = 1.0 - jitter * rng.gen::<f64>();
        envelope.mul_f64(factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(h: u64, s: u64) -> TrialKey {
        TrialKey {
            scenario_hash: h,
            seed: s,
        }
    }

    #[test]
    fn envelope_doubles_then_saturates() {
        let p = BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(70),
            jitter: 0.0,
        };
        assert_eq!(p.envelope(1), Duration::from_millis(10));
        assert_eq!(p.envelope(2), Duration::from_millis(20));
        assert_eq!(p.envelope(3), Duration::from_millis(40));
        assert_eq!(p.envelope(4), Duration::from_millis(70));
        assert_eq!(p.envelope(64), Duration::from_millis(70));
    }

    #[test]
    fn delay_is_deterministic_and_input_sensitive() {
        let p = BackoffPolicy::default();
        let a = p.delay(7, key(1, 2), 3);
        assert_eq!(a, p.delay(7, key(1, 2), 3), "same inputs, same delay");
        assert_ne!(a, p.delay(8, key(1, 2), 3), "campaign seed matters");
        assert_ne!(a, p.delay(7, key(9, 2), 3), "scenario hash matters");
        assert_ne!(a, p.delay(7, key(1, 2), 4), "attempt matters");
    }

    #[test]
    fn delay_respects_jitter_band() {
        let p = BackoffPolicy {
            base: Duration::from_millis(40),
            cap: Duration::from_secs(1),
            jitter: 0.25,
        };
        for seed in 0..50 {
            let d = p.delay(seed, key(seed * 3, seed * 5), 2);
            let envelope = p.envelope(2);
            assert!(d <= envelope, "{d:?} above envelope {envelope:?}");
            assert!(d >= envelope.mul_f64(0.75), "{d:?} below jitter floor");
        }
    }

    #[test]
    fn zero_jitter_is_the_bare_envelope() {
        let p = BackoffPolicy {
            base: Duration::from_millis(5),
            cap: Duration::from_secs(1),
            jitter: 0.0,
        };
        assert_eq!(p.delay(1, key(2, 3), 4), p.envelope(4));
    }
}
