//! First-class supervisor metrics.
//!
//! The supervisor's own health — queue depth, admission sheds, retries,
//! backoff waits, watchdog stalls, write-offs, quarantines, worker state —
//! was previously observable only by reading the ledger after the fact.
//! [`ServerMetrics`] records it live, into the same typed
//! [`MetricsRegistry`] slots the trial telemetry uses
//! (`Counter::TrialsSubmitted` … `Gauge::QueueDepth` …), so the snapshot
//! bus, the campaign aggregator, the JSONL feed and the Prometheus
//! exposition all handle supervisor snapshots with zero new machinery.
//!
//! The handle is shared across the submitting thread, every worker and
//! the watchdog; updates take a private mutex that is never held across
//! any other lock, I/O, or user code. Supervisor metrics never touch the
//! engine-side slots (and vice versa), so merging a supervisor snapshot
//! with trial snapshots in the aggregator stays sound: each family's
//! counters add against zeros from the other.

use std::sync::{Arc, Mutex};

use cavenet_telemetry::{Counter, Gauge, HistogramId, MetricsRegistry};

/// A thread-safe, clone-cheap handle to the supervisor's live metrics
/// registry.
#[derive(Debug, Clone, Default)]
pub struct ServerMetrics {
    inner: Arc<Mutex<MetricsRegistry>>,
}

impl ServerMetrics {
    /// A fresh, all-zero registry.
    pub fn new() -> ServerMetrics {
        ServerMetrics::default()
    }

    pub(crate) fn inc(&self, counter: Counter) {
        self.inner.lock().expect("metrics lock").inc(counter);
    }

    pub(crate) fn set(&self, gauge: Gauge, value: u64) {
        self.inner.lock().expect("metrics lock").set(gauge, value);
    }

    pub(crate) fn observe(&self, histogram: HistogramId, value: u64) {
        self.inner
            .lock()
            .expect("metrics lock")
            .observe(histogram, value);
    }

    /// A point-in-time copy of the registry (what the supervisor
    /// publishes on the snapshot bus).
    pub fn snapshot(&self) -> MetricsRegistry {
        self.inner.lock().expect("metrics lock").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_clones_share_one_registry() {
        let metrics = ServerMetrics::new();
        let other = metrics.clone();
        metrics.inc(Counter::TrialsSubmitted);
        other.inc(Counter::TrialsSubmitted);
        other.set(Gauge::QueueDepth, 3);
        metrics.observe(HistogramId::BackoffDelayNs, 1_000_000);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter(Counter::TrialsSubmitted), 2);
        assert_eq!(snap.gauge(Gauge::QueueDepth), 3);
        assert_eq!(snap.histogram(HistogramId::BackoffDelayNs).count(), 1);
    }
}
