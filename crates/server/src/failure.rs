//! Typed failure taxonomy for supervised trials.
//!
//! Every way a trial attempt can die maps to exactly one [`TrialFailure`]
//! variant, so retry policy, quarantine decisions and the campaign ledger
//! all reason about *kinds* of failure rather than panic strings. The
//! supervisor builds these from caught unwind payloads (a panicking
//! protocol stack, a watchdog cancellation) and from typed errors the
//! trial driver returns itself (scenario validation, checkpoint I/O).

/// Why one attempt of a supervised trial did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialFailure {
    /// The trial's thread unwound with a non-cancellation panic — an
    /// engine or protocol bug, or an injected chaos panic. The payload's
    /// textual form is preserved for the failure history.
    Panicked {
        /// The panic payload rendered to text (`"<opaque panic payload>"`
        /// when the payload was neither a `String` nor a `&str`).
        message: String,
    },
    /// The watchdog declared the trial stalled (its heartbeat stopped
    /// advancing past the stall timeout) and cancelled it.
    Stalled {
        /// The last heartbeat observed before cancellation: events
        /// dispatched by the wedged attempt.
        beats: u64,
    },
    /// The scenario failed validation or could not build its mobility.
    /// Deterministic — retrying cannot help, but the supervisor retries
    /// anyway and lets the attempt budget quarantine it.
    Scenario {
        /// The builder's error rendered to text.
        message: String,
    },
    /// A checkpoint failed to serialize or to reach disk mid-run.
    Checkpoint {
        /// The snapshot or I/O error rendered to text.
        message: String,
    },
    /// The trial was cancelled but never unwound within the lost grace
    /// period — its worker is wedged beyond recovery and was abandoned.
    Lost,
}

impl TrialFailure {
    /// Stable one-word category name ("panicked", "stalled", ...), used
    /// by ledgers and bench reports to bucket failures.
    pub fn kind(&self) -> &'static str {
        match self {
            TrialFailure::Panicked { .. } => "panicked",
            TrialFailure::Stalled { .. } => "stalled",
            TrialFailure::Scenario { .. } => "scenario",
            TrialFailure::Checkpoint { .. } => "checkpoint",
            TrialFailure::Lost => "lost",
        }
    }
}

impl std::fmt::Display for TrialFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrialFailure::Panicked { message } => write!(f, "panicked: {message}"),
            TrialFailure::Stalled { beats } => {
                write!(f, "stalled: heartbeat stuck at {beats} events")
            }
            TrialFailure::Scenario { message } => write!(f, "scenario: {message}"),
            TrialFailure::Checkpoint { message } => write!(f, "checkpoint: {message}"),
            TrialFailure::Lost => write!(f, "lost: worker abandoned past grace period"),
        }
    }
}

/// One failed attempt in a trial's history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialAttempt {
    /// 1-based attempt number.
    pub attempt: u64,
    /// How the attempt died.
    pub failure: TrialFailure,
}

impl std::fmt::Display for TrialAttempt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "attempt {}: {}", self.attempt, self.failure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_line_and_kind_is_stable() {
        let cases = [
            (
                TrialFailure::Panicked {
                    message: "boom".into(),
                },
                "panicked",
            ),
            (TrialFailure::Stalled { beats: 512 }, "stalled"),
            (
                TrialFailure::Scenario {
                    message: "no senders".into(),
                },
                "scenario",
            ),
            (
                TrialFailure::Checkpoint {
                    message: "disk full".into(),
                },
                "checkpoint",
            ),
            (TrialFailure::Lost, "lost"),
        ];
        for (failure, kind) in cases {
            assert_eq!(failure.kind(), kind);
            let line = TrialAttempt {
                attempt: 2,
                failure,
            }
            .to_string();
            assert!(line.starts_with("attempt 2: "), "{line}");
            assert!(!line.contains('\n'), "{line}");
        }
    }
}
