//! Admission control: typed load-shedding at the campaign boundary.
//!
//! A supervised campaign protects itself before it protects its trials:
//! work is rejected at submission time, with a typed reason, rather than
//! accepted and starved. The bounds are deliberately simple — a queue
//! depth and a node budget — because the goal is back-pressure the caller
//! can reason about, not a scheduler.

use cavenet_core::ScenarioError;

/// Why a submitted scenario was not admitted.
#[derive(Debug)]
pub enum AdmissionError {
    /// The pending queue (waiting plus backoff-delayed trials) is at
    /// capacity. Resubmit after some trials drain.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// Admitting this scenario would push the total node count of queued
    /// and running trials over the server's memory budget. Smaller trials
    /// may still be admitted — this is load shedding, not a hard stop.
    OverBudget {
        /// Nodes requested by the rejected scenario.
        requested: u64,
        /// Nodes already admitted (queued + running).
        admitted: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The scenario failed validation — it would be quarantined after
    /// `max_attempts` deterministic failures, so it is cheaper to refuse
    /// it outright.
    Invalid(ScenarioError),
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity } => {
                write!(f, "queue full: {capacity} trials already pending")
            }
            AdmissionError::OverBudget {
                requested,
                admitted,
                budget,
            } => write!(
                f,
                "over node budget: {requested} requested, {admitted} admitted, budget {budget}"
            ),
            AdmissionError::Invalid(e) => write!(f, "invalid scenario: {e}"),
            AdmissionError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for AdmissionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdmissionError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_limit() {
        assert!(AdmissionError::QueueFull { capacity: 4 }
            .to_string()
            .contains('4'));
        let over = AdmissionError::OverBudget {
            requested: 30,
            admitted: 100,
            budget: 120,
        };
        for n in ["30", "100", "120"] {
            assert!(over.to_string().contains(n), "{over}");
        }
        assert!(AdmissionError::ShuttingDown
            .to_string()
            .contains("shutting down"));
    }
}
