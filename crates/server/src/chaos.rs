//! Fault injection for exercising the supervisor itself.
//!
//! The engine's `FaultPlan` injects faults *into the simulated network*
//! (crashing nodes, packet loss); this module injects faults into the
//! *execution* of a trial — a panic mid-run, a wall-clock wedge — so the
//! supervision stack (catch-unwind isolation, watchdogs, retry, poison
//! quarantine) can be driven through its failure paths deterministically.
//!
//! A [`ChaosPlan`] maps trial seeds to an injection point and a budget of
//! attempts to sabotage. The per-attempt [`ChaosObserver`] is a
//! [`SimObserver`] that fires once when virtual time reaches the trigger:
//! a `Panic` unwinds with a plain `String` payload (indistinguishable
//! from a real engine bug, which is the point), a `Stall` spins on wall
//! time without dispatching events until the watchdog cancels it. An
//! attempt past its entry's budget runs clean — which is exactly how a
//! transient failure looks to the supervisor — while an unlimited budget
//! models a poison trial that can never succeed.
//!
//! Chaos fires *between* engine events and perturbs no engine state, so a
//! trial that survives (or retries past) its injection still produces the
//! bit-identical golden digest of an uninjected run.

use std::time::{Duration, Instant};

use cavenet_net::{CancelSignal, EventKind, ProgressHandle, SimObserver, SimTime, TrialCancelled};

/// What an injection does to the attempt it fires in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// Unwind with an untyped panic, as an engine bug would.
    Panic,
    /// Stop dispatching events and burn wall time, as a wedged protocol
    /// loop would, until the watchdog cancels the trial — or `max_wall`
    /// elapses, a safety valve so an unwatched trial cannot hang forever.
    Stall {
        /// Upper bound on the wall time spent wedged.
        max_wall: Duration,
    },
}

/// One sabotage rule: which trial, when, what, and for how many attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEntry {
    /// Seed of the trial to sabotage (trial seeds are unique within a
    /// campaign, so the seed is the trial's name here).
    pub seed: u64,
    /// Virtual time at which the injection fires.
    pub at: SimTime,
    /// The injected fault.
    pub kind: ChaosKind,
    /// Number of attempts to sabotage, counted from the first. Attempts
    /// beyond this run clean; `u64::MAX` is a poison trial.
    pub attempts: u64,
}

/// A campaign's set of sabotage rules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The rules; at most the first matching entry per trial applies.
    pub entries: Vec<ChaosEntry>,
}

impl ChaosPlan {
    /// A plan with no sabotage.
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// The injection armed for attempt `attempt` (1-based) of the trial
    /// seeded `seed`, or `None` when this attempt runs clean.
    pub fn arm(&self, seed: u64, attempt: u64) -> Option<(SimTime, ChaosKind)> {
        self.entries
            .iter()
            .find(|e| e.seed == seed && attempt <= e.attempts)
            .map(|e| (e.at, e.kind))
    }
}

/// The per-attempt observer that performs an armed injection.
///
/// Built via [`ChaosObserver::armed`] (or [`ChaosObserver::clean`] for an
/// unsabotaged attempt) and composed into the trial's observer stack.
#[derive(Debug, Clone)]
pub struct ChaosObserver {
    trigger: Option<(SimTime, ChaosKind)>,
    fired: bool,
    handle: ProgressHandle,
}

impl ChaosObserver {
    /// An observer that injects `trigger` (if any) once; `handle` is the
    /// trial's progress handle, polled during a stall so the watchdog's
    /// cancellation can reach the wedged attempt.
    pub fn armed(trigger: Option<(SimTime, ChaosKind)>, handle: ProgressHandle) -> Self {
        ChaosObserver {
            trigger,
            fired: false,
            handle,
        }
    }

    /// An observer that never fires.
    pub fn clean() -> Self {
        ChaosObserver::armed(None, ProgressHandle::new())
    }
}

impl SimObserver for ChaosObserver {
    fn on_event_dispatched(&mut self, now: SimTime, _seq: u64, _node: usize, _kind: EventKind) {
        let Some((at, kind)) = self.trigger else {
            return;
        };
        if self.fired || now < at {
            return;
        }
        self.fired = true;
        match kind {
            ChaosKind::Panic => {
                std::panic::panic_any(format!("chaos: injected panic at {} ns", now.as_nanos()))
            }
            ChaosKind::Stall { max_wall } => {
                let wedged_at = Instant::now();
                while wedged_at.elapsed() < max_wall {
                    match self.handle.signal() {
                        CancelSignal::Stall => std::panic::panic_any(TrialCancelled),
                        // Release the wedge on shutdown so the driver can
                        // checkpoint out at the next slice boundary.
                        CancelSignal::Shutdown => break,
                        CancelSignal::Run => {}
                    }
                    std::thread::sleep(Duration::from_micros(500));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ChaosPlan {
        ChaosPlan {
            entries: vec![
                ChaosEntry {
                    seed: 7,
                    at: SimTime::from_secs(3),
                    kind: ChaosKind::Panic,
                    attempts: 2,
                },
                ChaosEntry {
                    seed: 9,
                    at: SimTime::from_secs(1),
                    kind: ChaosKind::Panic,
                    attempts: u64::MAX,
                },
            ],
        }
    }

    #[test]
    fn arming_respects_seed_and_attempt_budget() {
        let p = plan();
        assert!(p.arm(7, 1).is_some());
        assert!(p.arm(7, 2).is_some());
        assert!(p.arm(7, 3).is_none(), "past the budget: clean attempt");
        assert!(p.arm(9, 1_000_000).is_some(), "poison never recovers");
        assert!(p.arm(8, 1).is_none(), "unlisted trial untouched");
    }

    #[test]
    fn panic_fires_once_at_the_trigger_time() {
        let mut obs = ChaosObserver::armed(
            Some((SimTime::from_secs(2), ChaosKind::Panic)),
            ProgressHandle::new(),
        );
        // Before the trigger: nothing.
        obs.on_event_dispatched(SimTime::from_secs(1), 0, 0, EventKind::MacTimer);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            obs.on_event_dispatched(SimTime::from_secs(2), 1, 0, EventKind::MacTimer);
        }));
        let payload = caught.expect_err("must fire at the trigger");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.starts_with("chaos: injected panic"), "{message}");
        // Fired flag holds even if the attempt somehow continues.
        obs.on_event_dispatched(SimTime::from_secs(3), 2, 0, EventKind::MacTimer);
    }

    #[test]
    fn stall_unwinds_typed_when_cancelled() {
        let handle = ProgressHandle::new();
        handle.cancel(CancelSignal::Stall);
        let mut obs = ChaosObserver::armed(
            Some((
                SimTime::ZERO,
                ChaosKind::Stall {
                    max_wall: Duration::from_secs(5),
                },
            )),
            handle,
        );
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            obs.on_event_dispatched(SimTime::ZERO, 0, 0, EventKind::MacTimer);
        }));
        assert!(caught
            .expect_err("stall must unwind")
            .is::<TrialCancelled>());
    }

    #[test]
    fn stall_safety_valve_releases_unwatched_trials() {
        let mut obs = ChaosObserver::armed(
            Some((
                SimTime::ZERO,
                ChaosKind::Stall {
                    max_wall: Duration::from_millis(5),
                },
            )),
            ProgressHandle::new(),
        );
        // No watchdog ever cancels: the valve must return control.
        obs.on_event_dispatched(SimTime::ZERO, 0, 0, EventKind::MacTimer);
    }

    #[test]
    fn clean_observer_is_inert() {
        let mut obs = ChaosObserver::clean();
        for s in 0..5 {
            obs.on_event_dispatched(SimTime::from_secs(s), s, 0, EventKind::MacTimer);
        }
    }
}
