//! CAVENET-RS campaign service: supervised, fault-tolerant trial execution.
//!
//! Batch sweeps ([`Campaign::run_resumable`](cavenet_core::Campaign))
//! assume every trial is well-behaved; a long chaos or soak campaign
//! cannot. This crate runs trials under supervision instead:
//!
//! * **Isolation** — each attempt runs under `catch_unwind`; a panicking
//!   protocol stack takes down one attempt, not the campaign, and the
//!   payload is captured into a typed [`TrialFailure`].
//! * **Retry with deterministic backoff** — failed trials re-queue after a
//!   [`BackoffPolicy`] delay that is a pure function of the campaign seed,
//!   the trial key and the attempt number; retries resume from the
//!   trial's newest on-disk checkpoint, not from zero.
//! * **Watchdogs** — every trial carries a
//!   [`ProgressProbe`](cavenet_net::ProgressProbe) heartbeat; a heartbeat
//!   that stops advancing past the stall timeout gets the trial cancelled
//!   and retried, and one that ignores cancellation past a grace period is
//!   abandoned as [`TrialFailure::Lost`].
//! * **Poison quarantine** — a trial that fails `max_attempts` times is
//!   quarantined with its full failure history rather than retried
//!   forever.
//! * **Admission control and graceful shutdown** — a bounded queue and a
//!   node budget shed load with typed [`AdmissionError`]s; shutdown
//!   checkpoints in-flight trials and writes a resumable
//!   [`CampaignLedger`].
//!
//! Supervision never compromises determinism: surviving trials produce
//! event-stream digests bit-identical to unsupervised straight runs, and
//! every recovery decision (backoff, chaos injection) derives from seeds.
//!
//! * **Live observability** — the supervisor records its own health
//!   (queue depth, sheds, retries, stalls, write-offs, quarantines,
//!   worker state) into typed [`ServerMetrics`] slots; configure a
//!   [`SnapshotBus`](cavenet_telemetry::SnapshotBus) on
//!   [`ServerConfig::bus`] and in-flight trials stream registry
//!   snapshots onto it while the watchdog publishes the supervisor's —
//!   all digest-invisible, and pollable mid-campaign via
//!   [`CampaignServer::status`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod backoff;
mod chaos;
mod failure;
mod ledger;
mod metrics;
mod supervisor;

pub use admission::AdmissionError;
pub use backoff::BackoffPolicy;
pub use chaos::{ChaosEntry, ChaosKind, ChaosObserver, ChaosPlan};
pub use failure::{TrialAttempt, TrialFailure};
pub use ledger::{CampaignLedger, TrialKey, TrialState, LEDGER_SCHEMA_VERSION};
pub use metrics::ServerMetrics;
pub use supervisor::{
    CampaignReport, CampaignServer, ServerConfig, ServerStatus, TrialId, TrialOutcome,
    TrialProgress, TrialReport,
};
