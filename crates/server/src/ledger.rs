//! The campaign ledger: durable, resumable record of every trial's fate.
//!
//! A campaign that dies — crash, SIGTERM, graceful shutdown — must not
//! re-run work it already finished. The ledger is the unit of that
//! promise: one JSON document mapping each trial's identity to its
//! terminal (or interrupted) state. On restart the server loads it and
//! replays completed trials from the record instead of the simulator,
//! while interrupted trials fall back to their on-disk checkpoints.
//!
//! Trial identity is the same pair checkpoints validate against
//! ([`scenario_identity`](cavenet_core::scenario_identity)): the scenario
//! hash and the seed. Digests recorded here are the golden event-stream
//! digests, so a resumed campaign can still be audited for bit-identical
//! behaviour.

use std::path::Path;

use cavenet_telemetry::json::parse;
use cavenet_telemetry::Json;

/// Version stamped into every ledger as `"ledger_version"`.
pub const LEDGER_SCHEMA_VERSION: u64 = 1;

/// Identity of one trial: the checkpoint-layer scenario hash plus the
/// trial seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrialKey {
    /// [`scenario_identity`](cavenet_core::scenario_identity) hash of the
    /// trial's scenario.
    pub scenario_hash: u64,
    /// The trial's engine seed.
    pub seed: u64,
}

impl TrialKey {
    /// The key of `scenario`, derived exactly like checkpoint metadata.
    pub fn of(scenario: &cavenet_core::Scenario) -> TrialKey {
        let meta = cavenet_core::scenario_identity(scenario);
        TrialKey {
            scenario_hash: meta.scenario_hash,
            seed: meta.seed,
        }
    }

    /// Stable directory name for this trial's checkpoint store.
    pub fn dir_name(&self) -> String {
        format!("trial_{:016x}_{:016x}", self.scenario_hash, self.seed)
    }
}

/// The recorded fate of one trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialState {
    /// The trial finished; its golden digest and event count are the
    /// audit record a replay must match.
    Completed {
        /// Final event-stream digest.
        digest: u64,
        /// Engine events dispatched.
        events: u64,
        /// Attempts it took (1 = clean first try).
        attempts: u64,
    },
    /// The supervisor exhausted the attempt budget and gave up; the
    /// failure history explains every attempt.
    Quarantined {
        /// One line per failed attempt, oldest first.
        failures: Vec<String>,
    },
    /// A shutdown caught the trial mid-run; it checkpointed and can
    /// resume from its store.
    Interrupted {
        /// Attempts consumed so far (failed attempts only).
        attempts: u64,
    },
    /// Admitted but never started (drained from the queue by a
    /// shutdown). Resubmit to run it.
    Pending,
}

impl TrialState {
    fn name(&self) -> &'static str {
        match self {
            TrialState::Completed { .. } => "completed",
            TrialState::Quarantined { .. } => "quarantined",
            TrialState::Interrupted { .. } => "interrupted",
            TrialState::Pending => "pending",
        }
    }
}

/// The campaign's trial-by-trial record, in recording order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignLedger {
    /// Campaign master seed (provenance; backoff derives from it).
    pub campaign_seed: u64,
    /// `(trial, state)` pairs; a key recorded twice keeps the later state.
    pub entries: Vec<(TrialKey, TrialState)>,
}

impl CampaignLedger {
    /// An empty ledger for `campaign_seed`.
    pub fn new(campaign_seed: u64) -> Self {
        CampaignLedger {
            campaign_seed,
            entries: Vec::new(),
        }
    }

    /// Record (or overwrite) the state of `key`.
    pub fn record(&mut self, key: TrialKey, state: TrialState) {
        if let Some(entry) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            entry.1 = state;
        } else {
            self.entries.push((key, state));
        }
    }

    /// The recorded state of `key`, if any.
    pub fn get(&self, key: TrialKey) -> Option<&TrialState> {
        self.entries.iter().find(|(k, _)| *k == key).map(|(_, s)| s)
    }

    /// Render as a JSON document.
    pub fn to_json(&self) -> Json {
        let trials = self
            .entries
            .iter()
            .map(|(key, state)| {
                let mut members = vec![
                    (
                        "scenario_hash".to_string(),
                        Json::str(format!("{:016x}", key.scenario_hash)),
                    ),
                    ("seed".to_string(), Json::num_u64(key.seed)),
                    ("state".to_string(), Json::str(state.name())),
                ];
                match state {
                    TrialState::Completed {
                        digest,
                        events,
                        attempts,
                    } => {
                        members.push(("digest".into(), Json::str(format!("{digest:016x}"))));
                        members.push(("events".into(), Json::num_u64(*events)));
                        members.push(("attempts".into(), Json::num_u64(*attempts)));
                    }
                    TrialState::Quarantined { failures } => {
                        members.push((
                            "failures".into(),
                            Json::Arr(failures.iter().map(|f| Json::str(f.clone())).collect()),
                        ));
                    }
                    TrialState::Interrupted { attempts } => {
                        members.push(("attempts".into(), Json::num_u64(*attempts)));
                    }
                    TrialState::Pending => {}
                }
                Json::Obj(members)
            })
            .collect();
        Json::Obj(vec![
            (
                "ledger_version".into(),
                Json::num_u64(LEDGER_SCHEMA_VERSION),
            ),
            ("campaign_seed".into(), Json::num_u64(self.campaign_seed)),
            ("trials".into(), Json::Arr(trials)),
        ])
    }

    /// Parse a document produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// A message naming the first missing or ill-typed member.
    pub fn from_text(text: &str) -> Result<CampaignLedger, String> {
        let json = parse(text).map_err(|e| format!("ledger is not JSON: {e}"))?;
        let version = json
            .get("ledger_version")
            .and_then(Json::as_u64)
            .ok_or("ledger_version missing")?;
        if version != LEDGER_SCHEMA_VERSION {
            return Err(format!("unsupported ledger_version {version}"));
        }
        let campaign_seed = json
            .get("campaign_seed")
            .and_then(Json::as_u64)
            .ok_or("campaign_seed missing")?;
        let Some(Json::Arr(trials)) = json.get("trials") else {
            return Err("trials missing or not an array".into());
        };
        let mut ledger = CampaignLedger::new(campaign_seed);
        for (i, trial) in trials.iter().enumerate() {
            let entry = parse_trial(trial).map_err(|e| format!("trials[{i}]: {e}"))?;
            ledger.record(entry.0, entry.1);
        }
        Ok(ledger)
    }

    /// Load the ledger at `path`; `Ok(None)` when the file does not exist.
    ///
    /// # Errors
    ///
    /// An unreadable or malformed file (a *present* ledger that cannot be
    /// trusted must not be silently ignored — it guards re-execution).
    pub fn load(path: &Path) -> Result<Option<CampaignLedger>, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        CampaignLedger::from_text(&text).map(Some)
    }

    /// Write the ledger to `path` (parent directories created on demand).
    ///
    /// # Errors
    ///
    /// Any filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), std::io::Error> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json().render_pretty())
    }
}

fn hex_u64(json: &Json, key: &str) -> Result<u64, String> {
    let hex = json
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{key} missing"))?;
    u64::from_str_radix(hex, 16).map_err(|_| format!("{key} is not a hex hash: {hex:?}"))
}

fn parse_trial(trial: &Json) -> Result<(TrialKey, TrialState), String> {
    let key = TrialKey {
        scenario_hash: hex_u64(trial, "scenario_hash")?,
        seed: trial
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or("seed missing")?,
    };
    let attempts = || {
        trial
            .get("attempts")
            .and_then(Json::as_u64)
            .ok_or("attempts missing".to_string())
    };
    let state = match trial.get("state").and_then(Json::as_str) {
        Some("completed") => TrialState::Completed {
            digest: hex_u64(trial, "digest")?,
            events: trial
                .get("events")
                .and_then(Json::as_u64)
                .ok_or("events missing")?,
            attempts: attempts()?,
        },
        Some("quarantined") => {
            let Some(Json::Arr(lines)) = trial.get("failures") else {
                return Err("failures missing or not an array".into());
            };
            let mut failures = Vec::with_capacity(lines.len());
            for line in lines {
                failures.push(
                    line.as_str()
                        .ok_or("failures entry is not a string")?
                        .to_string(),
                );
            }
            TrialState::Quarantined { failures }
        }
        Some("interrupted") => TrialState::Interrupted {
            attempts: attempts()?,
        },
        Some("pending") => TrialState::Pending,
        Some(other) => return Err(format!("unknown state {other:?}")),
        None => return Err("state missing".into()),
    };
    Ok((key, state))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> TrialKey {
        TrialKey {
            scenario_hash: n * 0x9e37,
            seed: n,
        }
    }

    #[test]
    fn round_trips_every_state() {
        let mut ledger = CampaignLedger::new(99);
        ledger.record(
            key(1),
            TrialState::Completed {
                digest: 0xdead_beef,
                events: 12_345,
                attempts: 2,
            },
        );
        ledger.record(
            key(2),
            TrialState::Quarantined {
                failures: vec![
                    "attempt 1: panicked: boom".into(),
                    "attempt 2: stalled".into(),
                ],
            },
        );
        ledger.record(key(3), TrialState::Interrupted { attempts: 1 });
        ledger.record(key(4), TrialState::Pending);

        let text = ledger.to_json().render_pretty();
        let back = CampaignLedger::from_text(&text).unwrap();
        assert_eq!(back, ledger);
    }

    #[test]
    fn re_recording_overwrites_in_place() {
        let mut ledger = CampaignLedger::new(0);
        ledger.record(key(1), TrialState::Interrupted { attempts: 1 });
        ledger.record(
            key(1),
            TrialState::Completed {
                digest: 1,
                events: 2,
                attempts: 2,
            },
        );
        assert_eq!(ledger.entries.len(), 1);
        assert!(matches!(
            ledger.get(key(1)),
            Some(TrialState::Completed { attempts: 2, .. })
        ));
    }

    #[test]
    fn load_of_missing_file_is_none_and_garbage_is_an_error() {
        let dir = std::env::temp_dir().join(format!("cavenet_ledger_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("ledger.json");
        assert_eq!(CampaignLedger::load(&path), Ok(None));

        let mut ledger = CampaignLedger::new(5);
        ledger.record(key(9), TrialState::Pending);
        ledger.save(&path).unwrap();
        assert_eq!(CampaignLedger::load(&path).unwrap(), Some(ledger));

        std::fs::write(&path, "{ not json").unwrap();
        assert!(CampaignLedger::load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_and_state_are_validated() {
        let mut ledger = CampaignLedger::new(1);
        ledger.record(key(1), TrialState::Pending);
        let bad_version = ledger
            .to_json()
            .render_pretty()
            .replace("\"ledger_version\": 1", "\"ledger_version\": 99");
        assert!(CampaignLedger::from_text(&bad_version).is_err());
        let bad_state = ledger
            .to_json()
            .render_pretty()
            .replace("\"pending\"", "\"vanished\"");
        assert!(CampaignLedger::from_text(&bad_state).is_err());
    }
}
