//! The campaign supervisor: worker pool, watchdog and trial driver.
//!
//! A [`CampaignServer`] owns a pool of worker threads pulling admitted
//! trials from a bounded queue, plus one watchdog thread. Each attempt
//! runs inside `catch_unwind` on its worker: the trial driver resumes
//! from the newest readable checkpoint in the trial's store, then runs
//! the simulation in checkpoint-interval slices, writing a snapshot at
//! every slice boundary. Unwinds are classified into typed
//! [`TrialFailure`]s and either retried (after a deterministic backoff
//! delay, from the checkpoint the dead attempt left behind) or
//! quarantined once the attempt budget is spent.
//!
//! The watchdog polls every running trial's heartbeat. A heartbeat that
//! stops advancing past the stall timeout gets the trial cancelled (the
//! probe unwinds it with [`TrialCancelled`] at its next beat); a
//! cancelled trial that still does not unwind within the lost grace
//! period is abandoned — its report records [`TrialFailure::Lost`], its
//! wedged worker is written off and a replacement worker is spawned so
//! pool capacity survives.
//!
//! Graceful shutdown raises [`CancelSignal::Shutdown`] on every running
//! trial; drivers notice it at the next slice boundary, write a final
//! checkpoint and report the trial interrupted. Everything — completed
//! digests, quarantine histories, interrupted and never-started trials —
//! lands in the [`CampaignLedger`], which a future server instance loads
//! to replay completed work and resume the rest.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once};
use std::time::{Duration, Instant};

use cavenet_checkpoint::{store, Snapshot};
use cavenet_core::{Experiment, Fidelity, Lineage, Scenario};
use cavenet_net::{
    CancelSignal, EventKind, ProgressHandle, ProgressProbe, SimObserver, SimTime, TrialCancelled,
};
use cavenet_telemetry::{
    Counter, Gauge, HistogramId, MetricsRegistry, RunManifest, SnapshotBus, SnapshotPublisher,
    StreamProbe,
};
use cavenet_testkit::{GoldenDigest, Tee};

use crate::admission::AdmissionError;
use crate::backoff::BackoffPolicy;
use crate::chaos::{ChaosObserver, ChaosPlan};
use crate::failure::{TrialAttempt, TrialFailure};
use crate::ledger::{CampaignLedger, TrialKey, TrialState};
use crate::metrics::ServerMetrics;

/// Handle of one admitted trial, unique within a server instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrialId(pub u64);

/// Everything that tunes a [`CampaignServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing trials.
    pub workers: usize,
    /// Maximum trials waiting (queued plus backoff-delayed) before
    /// submission is refused with [`AdmissionError::QueueFull`].
    pub queue_capacity: usize,
    /// Maximum total node count across queued and running trials before
    /// submission is shed with [`AdmissionError::OverBudget`].
    pub node_budget: u64,
    /// Attempts before a trial is quarantined as poison.
    pub max_attempts: u64,
    /// Retry delay policy, seeded from [`seed`](Self::seed).
    pub backoff: BackoffPolicy,
    /// Wall time a heartbeat may sit still before the watchdog cancels
    /// the trial as stalled.
    pub stall_timeout: Duration,
    /// Wall time a cancelled trial gets to unwind before it is abandoned
    /// as lost and its worker written off.
    pub lost_grace: Duration,
    /// Watchdog poll interval.
    pub poll: Duration,
    /// Heartbeat stride: events dispatched between probe beats.
    pub heartbeat_stride: u64,
    /// Virtual-time interval between checkpoints (also the shutdown and
    /// resume granularity).
    pub checkpoint_every: Duration,
    /// Root directory: one checkpoint store per trial underneath, plus
    /// the campaign ledger.
    pub checkpoint_root: PathBuf,
    /// Campaign seed: the deterministic source backoff jitter derives
    /// from, recorded in the ledger.
    pub seed: u64,
    /// Execution-fault injection plan (empty in production).
    pub chaos: ChaosPlan,
    /// Live observability bus: when set, every trial streams registry
    /// snapshots onto it (via an armed [`StreamProbe`] in the observer
    /// stack) and the watchdog publishes supervisor metrics each poll.
    /// `None` (the default) attaches a disarmed probe — the golden
    /// digests are bit-identical either way.
    pub bus: Option<SnapshotBus>,
    /// Events dispatched between trial snapshot publications (clamped to
    /// ≥ 1). Only meaningful with [`bus`](Self::bus) set.
    pub snapshot_stride: u64,
}

impl ServerConfig {
    /// Production-shaped defaults rooted at `checkpoint_root`.
    pub fn new(checkpoint_root: impl Into<PathBuf>) -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            node_budget: 4096,
            max_attempts: 3,
            backoff: BackoffPolicy::default(),
            stall_timeout: Duration::from_secs(5),
            lost_grace: Duration::from_secs(30),
            poll: Duration::from_millis(20),
            heartbeat_stride: 256,
            checkpoint_every: Duration::from_secs(4),
            checkpoint_root: checkpoint_root.into(),
            seed: 0,
            chaos: ChaosPlan::none(),
            bus: None,
            snapshot_stride: 4096,
        }
    }

    /// Where this configuration keeps the campaign ledger.
    pub fn ledger_path(&self) -> PathBuf {
        self.checkpoint_root.join("ledger.json")
    }
}

/// Terminal state of one trial in a [`CampaignReport`].
#[derive(Debug, Clone, PartialEq)]
pub enum TrialOutcome {
    /// The trial finished (possibly after retries).
    Completed {
        /// Golden event-stream digest — bit-identical to an unsupervised
        /// straight run of the same scenario.
        digest: u64,
        /// Engine events dispatched across the whole virtual timeline.
        events: u64,
        /// Checkpoint lineage of the successful attempt (cold when it ran
        /// start-to-finish).
        lineage: Lineage,
        /// True when the result was replayed from a prior campaign's
        /// ledger without running the simulator.
        replayed: bool,
    },
    /// The attempt budget was exhausted; see
    /// [`TrialReport::attempts`] for the failure history.
    Quarantined,
    /// A shutdown caught the trial mid-run; it checkpointed and will
    /// resume when resubmitted.
    Interrupted,
    /// A shutdown drained the trial from the queue before it started.
    Pending,
}

/// The full record of one submitted trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialReport {
    /// Submission handle.
    pub id: TrialId,
    /// Trial identity (scenario hash + seed).
    pub key: TrialKey,
    /// Every failed attempt, oldest first.
    pub attempts: Vec<TrialAttempt>,
    /// How the trial ended.
    pub outcome: TrialOutcome,
    /// Simulation backend the trial's scenario selected
    /// ([`Fidelity::name`](cavenet_core::Fidelity::name): "exact",
    /// "fluid").
    pub backend: &'static str,
}

impl TrialReport {
    /// Total attempts consumed (failed ones plus the successful one).
    pub fn attempt_count(&self) -> u64 {
        let succeeded = matches!(
            self.outcome,
            TrialOutcome::Completed {
                replayed: false,
                ..
            }
        );
        (self.attempts.len() as u64 + u64::from(succeeded)).max(1)
    }

    /// A [`RunManifest`] for this trial: identity, the simulation
    /// backend, checkpoint lineage of the surviving attempt, and the
    /// retry/quarantine record. Clean first-try trials produce a manifest
    /// byte-identical to an unsupervised run's that stamps the same
    /// backend.
    pub fn manifest(&self, tool: &str) -> RunManifest {
        let mut m = RunManifest::new(tool);
        m.scenario_hash = self.key.scenario_hash;
        m.seed = self.key.seed;
        if let TrialOutcome::Completed { lineage, .. } = &self.outcome {
            if !lineage.is_cold() {
                m.set_lineage(lineage.parent_snapshot_hash, lineage.resume_step);
            }
        }
        m.set_retries(
            self.attempt_count(),
            self.attempts.iter().map(ToString::to_string).collect(),
            matches!(self.outcome, TrialOutcome::Quarantined),
        );
        m.set_backend(self.backend);
        m
    }
}

/// What a finished (or shut down) campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// One report per submitted trial, in completion order.
    pub trials: Vec<TrialReport>,
    /// The ledger as written to disk (prior entries carried over).
    pub ledger: CampaignLedger,
    /// Where the ledger was written.
    pub ledger_path: PathBuf,
    /// Final snapshot of the supervisor metrics (admissions, sheds,
    /// retries, stalls, quarantines, backoff delays...).
    pub metrics: MetricsRegistry,
}

impl CampaignReport {
    fn count(&self, f: impl Fn(&TrialOutcome) -> bool) -> usize {
        self.trials.iter().filter(|t| f(&t.outcome)).count()
    }

    /// Trials that completed (including replayed ones).
    pub fn completed(&self) -> usize {
        self.count(|o| matches!(o, TrialOutcome::Completed { .. }))
    }

    /// Trials replayed from a prior ledger without running.
    pub fn replayed(&self) -> usize {
        self.count(|o| matches!(o, TrialOutcome::Completed { replayed: true, .. }))
    }

    /// Trials quarantined as poison.
    pub fn quarantined(&self) -> usize {
        self.count(|o| matches!(o, TrialOutcome::Quarantined))
    }

    /// Trials interrupted mid-run by shutdown.
    pub fn interrupted(&self) -> usize {
        self.count(|o| matches!(o, TrialOutcome::Interrupted))
    }
}

/// Live heartbeat view of one in-flight trial (see
/// [`CampaignServer::status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialProgress {
    /// Submission handle.
    pub id: TrialId,
    /// The trial's seed.
    pub seed: u64,
    /// 1-based attempt currently running.
    pub attempt: u64,
    /// Events dispatched as of the last heartbeat (stride-rounded).
    pub beats: u64,
    /// Virtual time reached as of the last heartbeat.
    pub sim_time: SimTime,
}

/// A point-in-time view of a running campaign (see
/// [`CampaignServer::status`]).
#[derive(Debug, Clone)]
pub struct ServerStatus {
    /// Trials waiting in the admission queue.
    pub queued: usize,
    /// Failed trials parked in backoff.
    pub delayed: usize,
    /// Worker threads alive.
    pub workers_alive: usize,
    /// Every in-flight trial's heartbeat progress.
    pub running: Vec<TrialProgress>,
    /// Supervisor metrics snapshot at the same instant.
    pub metrics: MetricsRegistry,
}

/// One unit of queued work: a scenario plus its retry history.
#[derive(Debug, Clone)]
struct Job {
    id: TrialId,
    key: TrialKey,
    scenario: Scenario,
    /// 1-based number of the attempt this job will run.
    attempt: u64,
    history: Vec<TrialAttempt>,
}

/// Backoff parking slot for a job awaiting its retry time.
#[derive(Debug)]
struct Delayed {
    ready_at: Instant,
    job: Job,
}

/// Watchdog bookkeeping for an in-flight trial.
#[derive(Debug)]
struct Running {
    handle: ProgressHandle,
    job: Job,
    last_beats: u64,
    last_advance: Instant,
    cancelled_at: Option<Instant>,
}

#[derive(Debug, Default)]
struct State {
    queue: VecDeque<Job>,
    delayed: Vec<Delayed>,
    running: Vec<Running>,
    reports: Vec<TrialReport>,
    admitted_nodes: u64,
    next_id: u64,
    workers_alive: usize,
    /// No new submissions; running trials are asked to checkpoint out.
    shutting_down: bool,
    /// Workers exit once the queue and the delay park are empty.
    draining: bool,
}

struct Shared {
    config: ServerConfig,
    state: Mutex<State>,
    /// Workers wait here for queue items (or the draining flag).
    work: Condvar,
    /// Completion waiters (`finish`/`shutdown`) wait here.
    progress: Condvar,
    stop_watchdog: AtomicBool,
    /// Live supervisor metrics (see [`ServerMetrics`]).
    metrics: ServerMetrics,
    /// Publisher for the supervisor's own snapshots, when a bus is
    /// configured.
    publisher: Option<SnapshotPublisher>,
}

/// Refresh the point-in-time supervisor gauges from the locked state.
/// Called at every mutation site and on each watchdog tick, so a live
/// reader is never more than one poll behind.
fn refresh_gauges(st: &State, metrics: &ServerMetrics) {
    metrics.set(Gauge::QueueDepth, st.queue.len() as u64);
    metrics.set(Gauge::BackoffParked, st.delayed.len() as u64);
    metrics.set(Gauge::RunningTrials, st.running.len() as u64);
    metrics.set(Gauge::WorkersAlive, st.workers_alive as u64);
    let frontier = st
        .running
        .iter()
        .map(|r| r.handle.sim_time().as_nanos())
        .max()
        .unwrap_or(0);
    metrics.set(Gauge::MaxTrialSimTimeNs, frontier);
}

/// The supervised campaign executor. See the [module docs](self).
pub struct CampaignServer {
    shared: Arc<Shared>,
    prior: CampaignLedger,
    watchdog: Option<std::thread::JoinHandle<()>>,
    concluded: bool,
}

impl CampaignServer {
    /// Start workers and watchdog. An existing ledger under the
    /// configured root is loaded: trials it records as completed will be
    /// replayed from the record instead of re-run.
    ///
    /// # Errors
    ///
    /// A present-but-unreadable ledger (it guards against re-execution,
    /// so it must not be silently ignored).
    pub fn start(config: ServerConfig) -> Result<CampaignServer, String> {
        let prior = CampaignLedger::load(&config.ledger_path())?
            .unwrap_or_else(|| CampaignLedger::new(config.seed));
        let workers = config.workers.max(1);
        let publisher = config.bus.as_ref().map(|bus| bus.publisher("supervisor"));
        let shared = Arc::new(Shared {
            config,
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            progress: Condvar::new(),
            stop_watchdog: AtomicBool::new(false),
            metrics: ServerMetrics::new(),
            publisher,
        });
        for _ in 0..workers {
            spawn_worker(Arc::clone(&shared));
        }
        let watchdog = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || watchdog_loop(&shared))
        };
        Ok(CampaignServer {
            shared,
            prior,
            watchdog: Some(watchdog),
            concluded: false,
        })
    }

    /// Admit `scenario` for supervised execution.
    ///
    /// A trial the prior ledger records as completed is not re-run: it is
    /// immediately reported as [`TrialOutcome::Completed`] with
    /// `replayed: true` and the recorded digest.
    ///
    /// # Errors
    ///
    /// A typed [`AdmissionError`] when the scenario is invalid, the queue
    /// is full, the node budget would be exceeded, or the server is
    /// shutting down. Rejected submissions consume nothing.
    pub fn submit(&self, scenario: Scenario) -> Result<TrialId, AdmissionError> {
        scenario.validate().map_err(AdmissionError::Invalid)?;
        let key = TrialKey::of(&scenario);
        let nodes = scenario.nodes as u64;
        let config = &self.shared.config;
        let mut st = self.shared.state.lock().expect("state lock");
        if st.shutting_down || st.draining {
            return Err(AdmissionError::ShuttingDown);
        }
        let id = TrialId(st.next_id);
        if let Some(TrialState::Completed { digest, events, .. }) = self.prior.get(key) {
            st.next_id += 1;
            st.reports.push(TrialReport {
                id,
                key,
                attempts: Vec::new(),
                outcome: TrialOutcome::Completed {
                    digest: *digest,
                    events: *events,
                    lineage: Lineage::default(),
                    replayed: true,
                },
                backend: scenario.fidelity.name(),
            });
            self.shared.metrics.inc(Counter::TrialsSubmitted);
            self.shared.metrics.inc(Counter::TrialsCompleted);
            return Ok(id);
        }
        if st.queue.len() + st.delayed.len() >= config.queue_capacity {
            self.shared.metrics.inc(Counter::AdmissionSheds);
            return Err(AdmissionError::QueueFull {
                capacity: config.queue_capacity,
            });
        }
        if st.admitted_nodes + nodes > config.node_budget {
            self.shared.metrics.inc(Counter::AdmissionSheds);
            return Err(AdmissionError::OverBudget {
                requested: nodes,
                admitted: st.admitted_nodes,
                budget: config.node_budget,
            });
        }
        st.next_id += 1;
        st.admitted_nodes += nodes;
        st.queue.push_back(Job {
            id,
            key,
            scenario,
            attempt: 1,
            history: Vec::new(),
        });
        self.shared.metrics.inc(Counter::TrialsSubmitted);
        refresh_gauges(&st, &self.shared.metrics);
        drop(st);
        self.shared.work.notify_one();
        Ok(id)
    }

    /// A clone-cheap handle to the live supervisor metrics, pollable from
    /// any thread while the campaign runs.
    pub fn metrics(&self) -> ServerMetrics {
        self.shared.metrics.clone()
    }

    /// A point-in-time view of the campaign: queue occupancy, every
    /// in-flight trial's heartbeat progress (events *and* sim-time, from
    /// the [`ProgressHandle`]), and the supervisor metrics snapshot.
    pub fn status(&self) -> ServerStatus {
        let st = self.shared.state.lock().expect("state lock");
        ServerStatus {
            queued: st.queue.len(),
            delayed: st.delayed.len(),
            workers_alive: st.workers_alive,
            running: st
                .running
                .iter()
                .map(|r| TrialProgress {
                    id: r.job.id,
                    seed: r.job.key.seed,
                    attempt: r.job.attempt,
                    beats: r.handle.beats(),
                    sim_time: r.handle.sim_time(),
                })
                .collect(),
            metrics: self.shared.metrics.snapshot(),
        }
    }

    /// Wait for every admitted trial to reach a terminal state, then stop
    /// the pool, write the ledger and return the campaign report.
    ///
    /// # Errors
    ///
    /// Failure to write the ledger.
    pub fn finish(mut self) -> Result<CampaignReport, std::io::Error> {
        {
            let mut st = self.shared.state.lock().expect("state lock");
            while !(st.queue.is_empty() && st.delayed.is_empty() && st.running.is_empty()) {
                st = self
                    .shared
                    .progress
                    .wait_timeout(st, Duration::from_millis(50))
                    .expect("state lock")
                    .0;
            }
            st.draining = true;
        }
        self.shared.work.notify_all();
        self.conclude()
    }

    /// Graceful shutdown: refuse new work, drain never-started trials to
    /// [`TrialOutcome::Pending`], ask running trials to checkpoint out
    /// ([`TrialOutcome::Interrupted`]), write the resumable ledger and
    /// return the report.
    ///
    /// # Errors
    ///
    /// Failure to write the ledger.
    pub fn shutdown(mut self) -> Result<CampaignReport, std::io::Error> {
        {
            let mut st = self.shared.state.lock().expect("state lock");
            st.shutting_down = true;
            st.draining = true;
            for running in &st.running {
                running.handle.cancel(CancelSignal::Shutdown);
            }
            let mut parked: Vec<Job> = st.queue.drain(..).collect();
            parked.extend(st.delayed.drain(..).map(|d| d.job));
            for job in parked {
                st.admitted_nodes = st.admitted_nodes.saturating_sub(job.scenario.nodes as u64);
                st.reports.push(TrialReport {
                    id: job.id,
                    key: job.key,
                    backend: job.scenario.fidelity.name(),
                    attempts: job.history,
                    outcome: TrialOutcome::Pending,
                });
            }
            while !st.running.is_empty() {
                st = self
                    .shared
                    .progress
                    .wait_timeout(st, Duration::from_millis(50))
                    .expect("state lock")
                    .0;
            }
        }
        self.shared.work.notify_all();
        self.conclude()
    }

    /// Stop threads, build and persist the ledger, assemble the report.
    fn conclude(&mut self) -> Result<CampaignReport, std::io::Error> {
        {
            let mut st = self.shared.state.lock().expect("state lock");
            let patience = Instant::now() + Duration::from_secs(10);
            while st.workers_alive > 0 && Instant::now() < patience {
                st = self
                    .shared
                    .progress
                    .wait_timeout(st, Duration::from_millis(50))
                    .expect("state lock")
                    .0;
            }
        }
        self.stop_threads();
        self.concluded = true;
        let trials = {
            let mut st = self.shared.state.lock().expect("state lock");
            std::mem::take(&mut st.reports)
        };
        let config = &self.shared.config;
        let mut ledger = self.prior.clone();
        ledger.campaign_seed = config.seed;
        for report in &trials {
            let state = match &report.outcome {
                TrialOutcome::Completed { replayed: true, .. } => continue,
                TrialOutcome::Completed { digest, events, .. } => TrialState::Completed {
                    digest: *digest,
                    events: *events,
                    attempts: report.attempt_count(),
                },
                TrialOutcome::Quarantined => TrialState::Quarantined {
                    failures: report.attempts.iter().map(ToString::to_string).collect(),
                },
                TrialOutcome::Interrupted => TrialState::Interrupted {
                    attempts: report.attempts.len() as u64,
                },
                TrialOutcome::Pending => TrialState::Pending,
            };
            ledger.record(report.key, state);
        }
        let ledger_path = config.ledger_path();
        ledger.save(&ledger_path)?;
        // One final supervisor snapshot so a tailer sees the settled
        // counters even if the last watchdog tick raced conclusion.
        if let Some(publisher) = &self.shared.publisher {
            publisher.publish(0, 0, &self.shared.metrics.snapshot());
        }
        Ok(CampaignReport {
            trials,
            ledger,
            ledger_path,
            metrics: self.shared.metrics.snapshot(),
        })
    }

    fn stop_threads(&mut self) {
        self.shared.stop_watchdog.store(true, Ordering::Relaxed);
        self.shared.work.notify_all();
        if let Some(handle) = self.watchdog.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for CampaignServer {
    fn drop(&mut self) {
        if self.concluded {
            return;
        }
        {
            let mut st = self.shared.state.lock().expect("state lock");
            st.shutting_down = true;
            st.draining = true;
            for running in &st.running {
                running.handle.cancel(CancelSignal::Shutdown);
            }
        }
        self.stop_threads();
    }
}

fn spawn_worker(shared: Arc<Shared>) {
    shared.state.lock().expect("state lock").workers_alive += 1;
    std::thread::spawn(move || worker_loop(&shared));
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        // Pop and register atomically, so a trial is never invisible to
        // completion waiters between queue and running set.
        let claimed = {
            let mut st = shared.state.lock().expect("state lock");
            loop {
                if let Some(job) = st.queue.pop_front() {
                    let handle = ProgressHandle::new();
                    st.running.push(Running {
                        handle: handle.clone(),
                        job: job.clone(),
                        last_beats: 0,
                        last_advance: Instant::now(),
                        cancelled_at: None,
                    });
                    break Some((job, handle));
                }
                if st.draining && st.delayed.is_empty() {
                    st.workers_alive -= 1;
                    break None;
                }
                st = shared
                    .work
                    .wait_timeout(st, Duration::from_millis(20))
                    .expect("state lock")
                    .0;
            }
        };
        let Some((job, handle)) = claimed else {
            shared.progress.notify_all();
            return;
        };

        let result = run_supervised_attempt(&shared.config, &job, &handle);

        let mut st = shared.state.lock().expect("state lock");
        let Some(pos) = st.running.iter().position(|r| r.job.id == job.id) else {
            // The watchdog already declared this trial lost and recorded
            // its fate; this late result belongs to an abandoned attempt.
            drop(st);
            shared.progress.notify_all();
            continue;
        };
        st.running.swap_remove(pos);
        match result {
            AttemptResult::Completed {
                digest,
                events,
                lineage,
            } => {
                st.admitted_nodes = st.admitted_nodes.saturating_sub(job.scenario.nodes as u64);
                st.reports.push(TrialReport {
                    id: job.id,
                    key: job.key,
                    backend: job.scenario.fidelity.name(),
                    attempts: job.history,
                    outcome: TrialOutcome::Completed {
                        digest,
                        events,
                        lineage,
                        replayed: false,
                    },
                });
                shared.metrics.inc(Counter::TrialsCompleted);
            }
            AttemptResult::Interrupted => {
                st.admitted_nodes = st.admitted_nodes.saturating_sub(job.scenario.nodes as u64);
                st.reports.push(TrialReport {
                    id: job.id,
                    key: job.key,
                    backend: job.scenario.fidelity.name(),
                    attempts: job.history,
                    outcome: TrialOutcome::Interrupted,
                });
            }
            AttemptResult::Failed(failure) => {
                record_failure(&mut st, &shared.config, &shared.metrics, job, failure);
            }
        }
        refresh_gauges(&st, &shared.metrics);
        drop(st);
        shared.progress.notify_all();
    }
}

/// Fold one failed attempt into the state: quarantine past the budget,
/// park for a deterministic backoff delay otherwise (terminal under
/// shutdown, where retries would never run).
fn record_failure(
    st: &mut State,
    config: &ServerConfig,
    metrics: &ServerMetrics,
    job: Job,
    failure: TrialFailure,
) {
    let mut history = job.history;
    history.push(TrialAttempt {
        attempt: job.attempt,
        failure,
    });
    if st.shutting_down {
        st.admitted_nodes = st.admitted_nodes.saturating_sub(job.scenario.nodes as u64);
        st.reports.push(TrialReport {
            id: job.id,
            key: job.key,
            backend: job.scenario.fidelity.name(),
            attempts: history,
            outcome: TrialOutcome::Interrupted,
        });
        return;
    }
    if history.len() as u64 >= config.max_attempts {
        st.admitted_nodes = st.admitted_nodes.saturating_sub(job.scenario.nodes as u64);
        st.reports.push(TrialReport {
            id: job.id,
            key: job.key,
            backend: job.scenario.fidelity.name(),
            attempts: history,
            outcome: TrialOutcome::Quarantined,
        });
        metrics.inc(Counter::TrialsQuarantined);
        return;
    }
    let delay = config.backoff.delay(config.seed, job.key, job.attempt);
    metrics.inc(Counter::TrialRetries);
    metrics.observe(
        HistogramId::BackoffDelayNs,
        delay.as_nanos().min(u128::from(u64::MAX)) as u64,
    );
    st.delayed.push(Delayed {
        ready_at: Instant::now() + delay,
        job: Job {
            attempt: job.attempt + 1,
            history,
            ..job
        },
    });
}

fn watchdog_loop(shared: &Arc<Shared>) {
    while !shared.stop_watchdog.load(Ordering::Relaxed) {
        std::thread::sleep(shared.config.poll);
        let now = Instant::now();
        let mut replacements = 0;
        {
            let mut st = shared.state.lock().expect("state lock");
            // Promote delayed jobs whose backoff has elapsed.
            let mut promoted = false;
            let mut i = 0;
            while i < st.delayed.len() {
                if st.delayed[i].ready_at <= now {
                    let slot = st.delayed.swap_remove(i);
                    st.queue.push_back(slot.job);
                    promoted = true;
                } else {
                    i += 1;
                }
            }
            if promoted {
                shared.work.notify_all();
            }
            // Heartbeat scan: cancel stalls, abandon the unkillable.
            let mut lost = Vec::new();
            for r in &mut st.running {
                let beats = r.handle.beats();
                if beats != r.last_beats {
                    r.last_beats = beats;
                    r.last_advance = now;
                    continue;
                }
                match r.cancelled_at {
                    None => {
                        if now.duration_since(r.last_advance) >= shared.config.stall_timeout {
                            r.handle.cancel(CancelSignal::Stall);
                            r.cancelled_at = Some(now);
                            shared.metrics.inc(Counter::WatchdogStalls);
                        }
                    }
                    Some(cancelled) => {
                        if now.duration_since(cancelled) >= shared.config.lost_grace {
                            lost.push(r.job.id);
                        }
                    }
                }
            }
            for id in lost {
                if let Some(pos) = st.running.iter().position(|r| r.job.id == id) {
                    let abandoned = st.running.swap_remove(pos);
                    shared.metrics.inc(Counter::TrialsLost);
                    record_failure(
                        &mut st,
                        &shared.config,
                        &shared.metrics,
                        abandoned.job,
                        TrialFailure::Lost,
                    );
                    replacements += 1;
                }
            }
            if replacements > 0 {
                shared.progress.notify_all();
            }
            refresh_gauges(&st, &shared.metrics);
        }
        // Publish the supervisor's own snapshot outside the state lock.
        if let Some(publisher) = &shared.publisher {
            publisher.publish(0, 0, &shared.metrics.snapshot());
        }
        // The wedged workers are written off; restore pool capacity.
        for _ in 0..replacements {
            spawn_worker(Arc::clone(shared));
        }
    }
}

/// One attempt's result, as seen by the worker's outcome handler.
enum AttemptResult {
    Completed {
        digest: u64,
        events: u64,
        lineage: Lineage,
    },
    Interrupted,
    Failed(TrialFailure),
}

/// The trial's observer stack: heartbeat probe, chaos injector, stream
/// probe (armed only when a bus is configured), golden digest. Only the
/// digest carries checkpointable state — the stream probe deliberately
/// keeps the default empty capture/restore — so the OBSERVER snapshot
/// section is exactly the digest's `(value, events)` pair, unchanged from
/// the pre-streaming format.
type TrialObserver = Tee<ProgressProbe, Tee<ChaosObserver, Tee<StreamProbe, GoldenDigest>>>;

thread_local! {
    /// True while this thread is executing a supervised attempt — its
    /// panics are expected, caught, and should not spam stderr.
    static SUPERVISED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static QUIET_HOOK: Once = Once::new();

/// Chain a panic hook that silences panics from supervised attempts
/// (they are caught and classified) while delegating everything else to
/// the previously installed hook.
fn install_quiet_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPERVISED.with(std::cell::Cell::get) {
                prev(info);
            }
        }));
    });
}

fn run_supervised_attempt(
    config: &ServerConfig,
    job: &Job,
    handle: &ProgressHandle,
) -> AttemptResult {
    install_quiet_hook();
    SUPERVISED.with(|s| s.set(true));
    let outcome = catch_unwind(AssertUnwindSafe(|| drive_trial(config, job, handle)));
    SUPERVISED.with(|s| s.set(false));
    match outcome {
        Ok(Ok(result)) => result,
        Ok(Err(failure)) => AttemptResult::Failed(failure),
        // `as_ref`, not `&payload`: the latter would unsize the *Box* into
        // the `dyn Any` and every downcast would miss the real payload.
        Err(payload) => AttemptResult::Failed(classify_panic(payload.as_ref(), handle)),
    }
}

/// Map a caught unwind payload to its typed failure.
fn classify_panic(payload: &(dyn std::any::Any + Send), handle: &ProgressHandle) -> TrialFailure {
    if payload.is::<TrialCancelled>() {
        TrialFailure::Stalled {
            beats: handle.beats(),
        }
    } else if let Some(message) = payload.downcast_ref::<String>() {
        TrialFailure::Panicked {
            message: message.clone(),
        }
    } else if let Some(message) = payload.downcast_ref::<&str>() {
        TrialFailure::Panicked {
            message: (*message).to_string(),
        }
    } else {
        TrialFailure::Panicked {
            message: "<opaque panic payload>".into(),
        }
    }
}

/// Run one attempt: resume from the newest readable checkpoint (falling
/// back past corrupt files, cold when none applies), then drive the
/// simulation in checkpoint-interval slices, honouring shutdown at slice
/// boundaries, and finalize the golden digest exactly like an
/// unsupervised digest run.
fn drive_trial(
    config: &ServerConfig,
    job: &Job,
    handle: &ProgressHandle,
) -> Result<AttemptResult, TrialFailure> {
    if job.scenario.fidelity == Fidelity::Fluid {
        return drive_fluid_trial(config, job, handle);
    }
    let checkpoint = |message: String| TrialFailure::Checkpoint { message };
    let exp = Experiment::new(job.scenario.clone());
    let dir = config.checkpoint_root.join(job.key.dir_name());
    let chaos = ChaosObserver::armed(config.chaos.arm(job.key.seed, job.attempt), handle.clone());
    // Source name is the trial's identity (not the attempt), so a retry's
    // fresh snapshots supersede the dead attempt's in the aggregator.
    let stream = match &config.bus {
        Some(bus) => StreamProbe::armed(
            bus.publisher(format!("trial-{}", job.key.dir_name())),
            config.snapshot_stride,
        ),
        None => StreamProbe::disarmed(),
    };
    let observer: TrialObserver = Tee(
        handle.probe(config.heartbeat_stride),
        Tee(chaos, Tee(stream, GoldenDigest::new())),
    );

    let mut lineage = Lineage::default();
    let mut restored = None;
    let listing = store::list_newest_first(&dir).map_err(|e| checkpoint(e.to_string()))?;
    for path in listing {
        let Ok(bytes) = std::fs::read(&path) else {
            continue;
        };
        let Ok(snap) = Snapshot::from_bytes(&bytes) else {
            continue;
        };
        if let Ok((sim, recorder, meta)) = exp.resume_from_snapshot(observer.clone(), &snap) {
            lineage = Lineage {
                parent_snapshot_hash: snap.container_hash(),
                resume_step: meta.step,
            };
            restored = Some((sim, recorder));
            break;
        }
    }
    let (mut sim, recorder) = match restored {
        Some(pair) => pair,
        None => exp
            .build_sim(observer)
            .map_err(|e| TrialFailure::Scenario {
                message: e.to_string(),
            })?,
    };

    let every = (config.checkpoint_every.as_nanos().min(u128::from(u64::MAX)) as u64).max(1);
    let end = SimTime::from_secs_f64(job.scenario.sim_time.as_secs_f64()).as_nanos();
    loop {
        let now = sim.now().as_nanos();
        if now >= end {
            break;
        }
        if handle.signal() == CancelSignal::Shutdown {
            let snap = exp
                .snapshot_now(&sim, &recorder)
                .map_err(|e| checkpoint(e.to_string()))?;
            store::write_snapshot(&dir, now, &snap).map_err(|e| checkpoint(e.to_string()))?;
            return Ok(AttemptResult::Interrupted);
        }
        let target = now.saturating_add(every - now % every).min(end);
        sim.run_until(SimTime::from_nanos(target));
        let snap = exp
            .snapshot_now(&sim, &recorder)
            .map_err(|e| checkpoint(e.to_string()))?;
        store::write_snapshot(&dir, sim.now().as_nanos(), &snap)
            .map_err(|e| checkpoint(e.to_string()))?;
    }

    // Finalize exactly like `cavenet_testkit::digest_scenario`: fold the
    // final global and per-node statistics into the stream digest.
    let global = sim.global_stats();
    let per_node: Vec<_> = (0..job.scenario.nodes)
        .map(|i| (sim.node_stats(i), sim.mac_stats(i)))
        .collect();
    let Tee(_probe, Tee(_chaos, Tee(mut stream, mut digest))) = sim.into_observer();
    // Flush the final registry so the feed's tail equals the trial's
    // completed totals.
    stream.finish_and_publish();
    digest.absorb_stats(&global);
    for (i, (ns, ms)) in per_node.iter().enumerate() {
        digest.absorb_node(i, ns, ms);
    }
    Ok(AttemptResult::Completed {
        digest: digest.value(),
        events: digest.events(),
        lineage,
    })
}

/// Fluid-fidelity analog of the exact drive loop: the same
/// checkpoint-interval slicing, shutdown handling, corrupt-checkpoint
/// fallback and lineage, but the golden digest is the fluid engine's
/// deterministic step digest, `events` counts model steps, and heartbeats
/// are published once per slice (there is no event stream to probe, and
/// chaos/stream observers do not apply).
fn drive_fluid_trial(
    config: &ServerConfig,
    job: &Job,
    handle: &ProgressHandle,
) -> Result<AttemptResult, TrialFailure> {
    let checkpoint = |message: String| TrialFailure::Checkpoint { message };
    let exp = Experiment::new(job.scenario.clone());
    let dir = config.checkpoint_root.join(job.key.dir_name());
    let mut probe = handle.probe(1);

    let mut lineage = Lineage::default();
    let mut restored = None;
    let listing = store::list_newest_first(&dir).map_err(|e| checkpoint(e.to_string()))?;
    for path in listing {
        let Ok(bytes) = std::fs::read(&path) else {
            continue;
        };
        let Ok(snap) = Snapshot::from_bytes(&bytes) else {
            continue;
        };
        if let Ok((engine, meta)) = exp.resume_fluid_from_snapshot(&snap) {
            lineage = Lineage {
                parent_snapshot_hash: snap.container_hash(),
                resume_step: meta.step,
            };
            restored = Some(engine);
            break;
        }
    }
    let mut engine = match restored {
        Some(engine) => engine,
        None => exp.build_fluid().map_err(|e| TrialFailure::Scenario {
            message: e.to_string(),
        })?,
    };

    let every = (config.checkpoint_every.as_nanos().min(u128::from(u64::MAX)) as u64).max(1);
    while !engine.finished() {
        if handle.signal() == CancelSignal::Shutdown {
            let snap = exp
                .snapshot_fluid(&engine)
                .map_err(|e| checkpoint(e.to_string()))?;
            store::write_snapshot(&dir, engine.now_ns(), &snap)
                .map_err(|e| checkpoint(e.to_string()))?;
            return Ok(AttemptResult::Interrupted);
        }
        let now = engine.now_ns();
        let target = now.saturating_add(every - now % every);
        engine.run_until_ns(target);
        // One heartbeat per slice, doubling as the stall-cancellation
        // point (mirrors the probe's in-stream beats on the exact path).
        probe.on_event_dispatched(
            SimTime::from_nanos(engine.now_ns()),
            engine.steps_done(),
            0,
            EventKind::MacTimer,
        );
        probe.beat();
        let snap = exp
            .snapshot_fluid(&engine)
            .map_err(|e| checkpoint(e.to_string()))?;
        store::write_snapshot(&dir, engine.now_ns(), &snap)
            .map_err(|e| checkpoint(e.to_string()))?;
    }

    Ok(AttemptResult::Completed {
        digest: engine.digest(),
        events: engine.steps_done(),
        lineage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cavenet_core::{Protocol, Scenario};

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cavenet_srv_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_scenario(seed: u64) -> Scenario {
        let mut s = Scenario::paper_table1(Protocol::Aodv);
        s.sim_time = Duration::from_secs(12);
        s.traffic.cbr.start = Duration::from_secs(2);
        s.traffic.cbr.stop = Duration::from_secs(10);
        s.traffic.senders = vec![1, 2];
        s.seed = seed;
        s
    }

    fn quick_config(dir: PathBuf) -> ServerConfig {
        let mut config = ServerConfig::new(dir);
        config.workers = 2;
        config.checkpoint_every = Duration::from_secs(4);
        config.backoff.base = Duration::from_millis(2);
        config.backoff.cap = Duration::from_millis(10);
        config.poll = Duration::from_millis(5);
        config
    }

    #[test]
    fn clean_campaign_completes_every_trial() {
        let dir = scratch("clean");
        let server = CampaignServer::start(quick_config(dir.clone())).unwrap();
        for seed in [3, 4] {
            server.submit(tiny_scenario(seed)).unwrap();
        }
        let report = server.finish().unwrap();
        assert_eq!(report.trials.len(), 2);
        assert_eq!(report.completed(), 2);
        assert_eq!(report.quarantined(), 0);
        for trial in &report.trials {
            assert!(trial.attempts.is_empty(), "clean run retried: {trial:?}");
            assert_eq!(trial.attempt_count(), 1);
        }
        assert!(report.ledger_path.is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn node_budget_sheds_load_and_shutdown_refuses_work() {
        let dir = scratch("admission");
        let mut config = quick_config(dir.clone());
        config.workers = 1;
        // The node budget admits exactly one paper-sized trial; queued or
        // running, the second submission must be shed. (Queue-capacity
        // rejection is racy to provoke with live workers, so it is covered
        // by the chaos suite where trials block for long enough.)
        let scenario = tiny_scenario(1);
        config.node_budget = scenario.nodes as u64;
        let server = CampaignServer::start(config).unwrap();
        server.submit(scenario.clone()).unwrap();
        let mut other = scenario.clone();
        other.seed = 2;
        match server.submit(other) {
            Err(AdmissionError::OverBudget {
                requested, budget, ..
            }) => {
                assert_eq!(requested, scenario.nodes as u64);
                assert_eq!(budget, scenario.nodes as u64);
            }
            other => panic!("expected OverBudget, got {other:?}"),
        }
        let report = server.finish().unwrap();
        assert_eq!(report.completed(), 1);

        // After shutdown begins, submission is refused.
        let server = CampaignServer::start(quick_config(dir.clone())).unwrap();
        let report = server.shutdown().unwrap();
        assert!(report.trials.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fluid_trials_run_under_supervision_and_stamp_their_backend() {
        let dir = scratch("fluid");
        let mut scenario = tiny_scenario(9);
        scenario.fidelity = Fidelity::Fluid;
        // Reference digest from an unsupervised straight run.
        let exp = Experiment::new(scenario.clone());
        let (_result, engine) = exp.run_fluid().unwrap();
        let expected = engine.digest();

        let server = CampaignServer::start(quick_config(dir.clone())).unwrap();
        server.submit(scenario).unwrap();
        let report = server.finish().unwrap();
        assert_eq!(report.completed(), 1);
        let trial = &report.trials[0];
        assert_eq!(trial.backend, "fluid");
        match &trial.outcome {
            TrialOutcome::Completed { digest, events, .. } => {
                assert_eq!(*digest, expected, "supervised fluid digest diverged");
                assert_eq!(*events, engine.steps_done());
            }
            other => panic!("expected completion, got {other:?}"),
        }
        let manifest = trial.manifest("fluid_test").to_json();
        assert_eq!(
            manifest
                .get("backend")
                .and_then(cavenet_telemetry::Json::as_str),
            Some("fluid")
        );
        // Exact trials stamp "exact".
        let server = CampaignServer::start(quick_config(dir.clone())).unwrap();
        server.submit(tiny_scenario(9)).unwrap();
        let report = server.finish().unwrap();
        assert_eq!(report.trials[0].backend, "exact");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_scenario_is_refused_at_admission() {
        let dir = scratch("invalid");
        let server = CampaignServer::start(quick_config(dir.clone())).unwrap();
        let mut bad = tiny_scenario(1);
        bad.nodes = 0;
        assert!(matches!(
            server.submit(bad),
            Err(AdmissionError::Invalid(_))
        ));
        let report = server.finish().unwrap();
        assert!(report.trials.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
