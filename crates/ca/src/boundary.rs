//! Lane boundary conditions.

use std::fmt;

/// How a lane treats its two ends.
///
/// The CAVENET paper's central "improvement" was moving from the recycling
/// straight line of the first version to a closed ring, so that vehicles at
/// the head and tail of the road remain radio neighbours.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Boundary {
    /// Periodic boundary: the lane is a ring; positions wrap modulo `L` and
    /// the vehicle count is conserved. This is the improved CAVENET model and
    /// the classical NaS setting.
    Closed,
    /// First-version CAVENET behaviour: vehicles travel a straight segment
    /// and a vehicle that would pass the last site is teleported back to the
    /// first free site at the start of the lane. The lead vehicle sees open
    /// road ahead (infinite gap). Vehicle count is conserved but spatial
    /// continuity is broken — head and tail cannot communicate.
    Recycling,
    /// Open road: vehicles leaving past the last site are removed, and a new
    /// vehicle is injected at site 0 with probability `injection_rate` per
    /// step whenever site 0 is free. Vehicle count varies over time.
    Open {
        /// Per-step probability of injecting a vehicle at the entrance.
        injection_rate: f64,
    },
}

impl Boundary {
    /// Whether the vehicle population is constant over time.
    pub fn conserves_vehicles(&self) -> bool {
        !matches!(self, Boundary::Open { .. })
    }

    /// Whether lane geometry is periodic (ring road).
    pub fn is_periodic(&self) -> bool {
        matches!(self, Boundary::Closed)
    }
}

impl Default for Boundary {
    /// Defaults to the improved (ring) model.
    fn default() -> Self {
        Boundary::Closed
    }
}

impl fmt::Display for Boundary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Boundary::Closed => write!(f, "closed (ring)"),
            Boundary::Recycling => write!(f, "recycling (straight line, v1)"),
            Boundary::Open { injection_rate } => {
                write!(f, "open (injection rate {injection_rate})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_flags() {
        assert!(Boundary::Closed.conserves_vehicles());
        assert!(Boundary::Recycling.conserves_vehicles());
        assert!(!Boundary::Open {
            injection_rate: 0.3
        }
        .conserves_vehicles());
    }

    #[test]
    fn periodicity() {
        assert!(Boundary::Closed.is_periodic());
        assert!(!Boundary::Recycling.is_periodic());
        assert!(!Boundary::Open {
            injection_rate: 0.1
        }
        .is_periodic());
    }

    #[test]
    fn default_is_closed() {
        assert_eq!(Boundary::default(), Boundary::Closed);
    }

    #[test]
    fn display_nonempty() {
        for b in [
            Boundary::Closed,
            Boundary::Recycling,
            Boundary::Open {
                injection_rate: 0.5,
            },
        ] {
            assert!(!b.to_string().is_empty());
        }
    }
}
