//! Single-lane Nagel–Schreckenberg automaton.

use cavenet_rng::wire::{WireError, WireReader, WireWriter};
use cavenet_rng::SimRng;

use crate::{Boundary, CaError, NasParams, Vehicle, VehicleId};

/// A single lane of the Nagel–Schreckenberg automaton.
///
/// The lane owns its vehicles (kept sorted by position), a deterministic
/// seeded RNG for the stochastic rule, and bookkeeping counters used by the
/// measurement layer (seam crossings for flow, wall-clock step count).
///
/// # Update semantics
///
/// [`Lane::step`] applies the NaS rules **in parallel** (paper footnote 1):
/// all velocities are computed from the configuration at time `t_n`, then all
/// vehicles move simultaneously. Because rule 2 caps each velocity at the gap
/// ahead, parallel movement can never produce a collision; this invariant is
/// checked by `debug_assert!` and by property tests.
///
/// ```
/// use cavenet_ca::{Lane, NasParams, Boundary};
/// # fn main() -> Result<(), cavenet_ca::CaError> {
/// let params = NasParams::builder().length(100).density(0.2).build()?;
/// let mut lane = Lane::with_uniform_placement(params, Boundary::Closed, 7)?;
/// lane.step();
/// assert_eq!(lane.time(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lane {
    params: NasParams,
    boundary: Boundary,
    /// Vehicles sorted by ascending position.
    vehicles: Vec<Vehicle>,
    rng: SimRng,
    time: u64,
    next_id: u32,
    seam_crossings: u64,
    removed: u64,
    injected: u64,
}

impl Lane {
    /// Create a lane with vehicles spread as evenly as possible along it,
    /// all starting at velocity 0.
    ///
    /// # Errors
    ///
    /// Returns [`CaError::TooManyVehicles`] if `params.vehicles()` exceeds
    /// the lane length (already prevented by the params builder).
    pub fn with_uniform_placement(
        params: NasParams,
        boundary: Boundary,
        seed: u64,
    ) -> Result<Self, CaError> {
        let n = params.vehicles();
        let l = params.length();
        if n > l {
            return Err(CaError::TooManyVehicles {
                vehicles: n,
                sites: l,
            });
        }
        let positions: Vec<usize> = (0..n).map(|i| i * l / n).collect();
        let velocities = vec![0; n];
        Self::from_positions(params, boundary, &positions, &velocities, seed)
    }

    /// Create a lane with vehicles on uniformly random distinct sites, each
    /// with an independent uniform random velocity in `[0, v_max]`.
    ///
    /// # Errors
    ///
    /// Returns [`CaError::TooManyVehicles`] if the vehicles do not fit.
    pub fn with_random_placement(
        params: NasParams,
        boundary: Boundary,
        seed: u64,
    ) -> Result<Self, CaError> {
        let n = params.vehicles();
        let l = params.length();
        if n > l {
            return Err(CaError::TooManyVehicles {
                vehicles: n,
                sites: l,
            });
        }
        let mut rng = SimRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        // Floyd's algorithm for a uniform random n-subset of [0, l).
        let mut chosen = std::collections::BTreeSet::new();
        for j in (l - n)..l {
            let t = rng.gen_range(0..=j);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        let positions: Vec<usize> = chosen.into_iter().collect();
        let velocities: Vec<u32> = (0..n).map(|_| rng.gen_range(0..=params.vmax())).collect();
        Self::from_positions(params, boundary, &positions, &velocities, seed)
    }

    /// Create a lane from explicit vehicle positions and velocities.
    ///
    /// `positions` must be strictly increasing, in range, and the same length
    /// as `velocities`. Velocities above `v_max` are clamped.
    ///
    /// # Errors
    ///
    /// Returns [`CaError::InvalidPlacement`] for duplicate, unsorted or
    /// out-of-range positions.
    pub fn from_positions(
        params: NasParams,
        boundary: Boundary,
        positions: &[usize],
        velocities: &[u32],
        seed: u64,
    ) -> Result<Self, CaError> {
        if positions.len() != velocities.len() {
            return Err(CaError::InvalidPlacement {
                site: positions.len().min(velocities.len()),
            });
        }
        let l = params.length();
        let mut last: Option<usize> = None;
        for &p in positions {
            if p >= l || last.is_some_and(|prev| prev >= p) {
                return Err(CaError::InvalidPlacement { site: p });
            }
            last = Some(p);
        }
        let vehicles = positions
            .iter()
            .zip(velocities)
            .enumerate()
            .map(|(i, (&p, &v))| Vehicle::new(VehicleId(i as u32), p, v.min(params.vmax())))
            .collect::<Vec<_>>();
        let next_id = vehicles.len() as u32;
        let mut lane = Lane {
            params,
            boundary,
            vehicles,
            rng: SimRng::seed_from_u64(seed),
            time: 0,
            next_id,
            seam_crossings: 0,
            removed: 0,
            injected: 0,
        };
        lane.refresh_gaps();
        Ok(lane)
    }

    /// The parameter set this lane was built with.
    ///
    /// Note that for [`Boundary::Open`] lanes the *current* vehicle count is
    /// [`Lane::vehicle_count`], not `params().vehicles()`.
    pub fn params(&self) -> &NasParams {
        &self.params
    }

    /// The boundary condition.
    pub fn boundary(&self) -> Boundary {
        self.boundary
    }

    /// Number of update steps performed so far.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Current number of vehicles on the lane.
    pub fn vehicle_count(&self) -> usize {
        self.vehicles.len()
    }

    /// Current density `ρ = N / L`.
    pub fn density(&self) -> f64 {
        self.vehicles.len() as f64 / self.params.length() as f64
    }

    /// Vehicles, sorted by ascending position.
    pub fn vehicles(&self) -> &[Vehicle] {
        &self.vehicles
    }

    /// Look up a vehicle by id (O(N)).
    pub fn vehicle(&self, id: VehicleId) -> Option<&Vehicle> {
        self.vehicles.iter().find(|v| v.id() == id)
    }

    /// Average velocity `v̄(t) = N⁻¹ Σ vᵢ(t)` in cells per step — the
    /// paper's simulation variable of interest. Returns 0 for an empty lane.
    pub fn average_velocity(&self) -> f64 {
        if self.vehicles.is_empty() {
            return 0.0;
        }
        let total: u64 = self.vehicles.iter().map(|v| u64::from(v.velocity())).sum();
        total as f64 / self.vehicles.len() as f64
    }

    /// Instantaneous flow `J = ρ · v̄` in vehicles per step (the quantity
    /// plotted in the paper's fundamental diagram, Fig. 4).
    pub fn flow(&self) -> f64 {
        self.density() * self.average_velocity()
    }

    /// Long-run flow measured at the lane seam (site `L−1 → 0` crossings per
    /// elapsed step). Converges to `J` in the stationary regime of a closed
    /// lane. Returns 0 before the first step.
    pub fn seam_flow_rate(&self) -> f64 {
        if self.time == 0 {
            0.0
        } else {
            self.seam_crossings as f64 / self.time as f64
        }
    }

    /// Total vehicles removed at the exit of an open lane.
    pub fn removed_count(&self) -> u64 {
        self.removed
    }

    /// Total vehicles injected at the entrance of an open lane.
    pub fn injected_count(&self) -> u64 {
        self.injected
    }

    /// The paper's lane vector representation: a length-`L` row where
    /// unoccupied sites hold `−1` and occupied sites hold the vehicle's
    /// velocity.
    pub fn occupancy_row(&self) -> Vec<i32> {
        let mut row = vec![-1; self.params.length()];
        for v in &self.vehicles {
            row[v.position()] = v.velocity() as i32;
        }
        row
    }

    /// Physical positions of all vehicles (sorted order), in metres along
    /// the lane axis.
    pub fn positions_m(&self) -> Vec<f64> {
        self.vehicles
            .iter()
            .map(|v| v.position() as f64 * self.params.cell_length_m())
            .collect()
    }

    /// Advance the automaton by one time step (parallel update).
    pub fn step(&mut self) {
        self.refresh_gaps();
        let p = self.params.slowdown_probability();
        let vmax = self.params.vmax();
        let l = self.params.length();

        // Phase 1: velocity update from the frozen configuration.
        let mut new_velocities = Vec::with_capacity(self.vehicles.len());
        for v in &self.vehicles {
            // Rule 1: acceleration.
            let mut vel = (v.velocity() + 1).min(vmax);
            // Rule 2: slow down to the gap.
            vel = vel.min(v.gap());
            // Rule 2′: random slow-down.
            if p > 0.0 && self.rng.gen_bool(p) {
                vel = vel.saturating_sub(1);
            }
            new_velocities.push(vel);
        }

        // Phase 2: simultaneous movement.
        let mut exited = Vec::new();
        for (i, vel) in new_velocities.iter().copied().enumerate() {
            let veh = &mut self.vehicles[i];
            veh.set_velocity(vel);
            let intended = veh.position() + vel as usize;
            match self.boundary {
                Boundary::Closed => {
                    let wrapped = intended >= l;
                    let pos = intended % l;
                    if wrapped {
                        self.seam_crossings += 1;
                    }
                    veh.advance_to(pos, wrapped);
                }
                Boundary::Recycling | Boundary::Open { .. } => {
                    if intended >= l {
                        exited.push(i);
                    } else {
                        veh.advance_to(intended, false);
                    }
                }
            }
        }

        // Phase 3: boundary-specific handling of exited vehicles.
        match self.boundary {
            Boundary::Closed => {}
            Boundary::Recycling => self.recycle(&exited),
            Boundary::Open { injection_rate } => {
                // Remove in reverse so indices stay valid.
                for &i in exited.iter().rev() {
                    self.vehicles.remove(i);
                    self.removed += 1;
                }
                self.maybe_inject(injection_rate);
            }
        }

        self.vehicles.sort_by_key(|v| v.position());
        debug_assert!(self.no_collisions(), "parallel update produced a collision");
        self.time += 1;
        self.refresh_gaps();
    }

    /// Run `n` steps, collecting the average velocity after each. This is the
    /// `v̄(t)` series analysed throughout §IV of the paper.
    pub fn run_collect_velocity(&mut self, n: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            self.step();
            out.push(self.average_velocity());
        }
        out
    }

    /// Teleport exited vehicles to the first free sites from the start of the
    /// lane (first-version CAVENET semantics). The re-entry breaks the
    /// trajectory and is flagged via [`Vehicle::wrapped_last_step`].
    fn recycle(&mut self, exited: &[usize]) {
        if exited.is_empty() {
            return;
        }
        let l = self.params.length();
        let mut occupied = vec![false; l];
        for (i, v) in self.vehicles.iter().enumerate() {
            if !exited.contains(&i) {
                occupied[v.position()] = true;
            }
        }
        let mut cursor = 0usize;
        for &i in exited {
            while cursor < l && occupied[cursor] {
                cursor += 1;
            }
            debug_assert!(cursor < l, "no free site to recycle into");
            let site = cursor.min(l - 1);
            occupied[site] = true;
            self.vehicles[i].advance_to(site, true);
            self.seam_crossings += 1;
        }
    }

    fn maybe_inject(&mut self, rate: f64) {
        if rate <= 0.0 {
            return;
        }
        let entrance_free = self.vehicles.iter().all(|v| v.position() != 0);
        if entrance_free && self.rng.gen_bool(rate.min(1.0)) {
            let id = VehicleId(self.next_id);
            self.next_id += 1;
            self.vehicles.push(Vehicle::new(id, 0, self.params.vmax()));
            self.injected += 1;
        }
    }

    /// Recompute the gap field for every vehicle from current positions.
    fn refresh_gaps(&mut self) {
        let n = self.vehicles.len();
        if n == 0 {
            return;
        }
        let l = self.params.length();
        let vmax = self.params.vmax();
        let positions: Vec<usize> = self.vehicles.iter().map(|v| v.position()).collect();
        for i in 0..n {
            let gap = if i + 1 < n {
                (positions[i + 1] - positions[i] - 1) as u32
            } else {
                match self.boundary {
                    // Ring: wrap around to the first vehicle.
                    Boundary::Closed => {
                        if n == 1 {
                            // A lone vehicle never catches itself.
                            vmax
                        } else {
                            (positions[0] + l - positions[n - 1] - 1) as u32
                        }
                    }
                    // Straight road: open space ahead of the leader.
                    Boundary::Recycling | Boundary::Open { .. } => vmax,
                }
            };
            self.vehicles[i].set_gap(gap);
        }
    }

    fn no_collisions(&self) -> bool {
        self.vehicles
            .windows(2)
            .all(|w| w[0].position() < w[1].position())
    }

    /// Serialize the lane's dynamic state: every vehicle, the RNG stream,
    /// the step counter and the boundary bookkeeping. The configuration
    /// (`params`, `boundary`) is *not* captured — restores go into a lane
    /// rebuilt from the same scenario parameters.
    pub fn capture(&self, w: &mut WireWriter) {
        w.put_usize(self.vehicles.len());
        for v in &self.vehicles {
            v.capture(w);
        }
        w.put_u64(self.rng.state());
        w.put_u64(self.time);
        w.put_u32(self.next_id);
        w.put_u64(self.seam_crossings);
        w.put_u64(self.removed);
        w.put_u64(self.injected);
    }

    /// Overwrite this lane's dynamic state from a [`Lane::capture`] stream.
    ///
    /// The lane must have been built with the same parameters as the
    /// captured one; vehicle positions are validated against the current
    /// lane length so a snapshot from a different scenario fails loudly.
    ///
    /// # Errors
    ///
    /// [`WireError`] on a truncated stream, a malformed value, or a vehicle
    /// position outside this lane.
    pub fn restore(&mut self, r: &mut WireReader<'_>) -> Result<(), WireError> {
        let n = r.get_usize()?;
        let mut vehicles = Vec::with_capacity(n);
        let mut last: Option<usize> = None;
        for _ in 0..n {
            let v = Vehicle::restore(r)?;
            if v.position() >= self.params.length() {
                return Err(WireError::Malformed {
                    what: "vehicle position out of lane",
                    value: v.position() as u64,
                });
            }
            if last.is_some_and(|prev| prev >= v.position()) {
                return Err(WireError::Malformed {
                    what: "vehicle positions not strictly increasing",
                    value: v.position() as u64,
                });
            }
            last = Some(v.position());
            vehicles.push(v);
        }
        self.vehicles = vehicles;
        self.rng = SimRng::from_state(r.get_u64()?);
        self.time = r.get_u64()?;
        self.next_id = r.get_u32()?;
        self.seam_crossings = r.get_u64()?;
        self.removed = r.get_u64()?;
        self.injected = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(l: usize, n: usize, p: f64) -> NasParams {
        NasParams::builder()
            .length(l)
            .vehicle_count(n)
            .slowdown_probability(p)
            .build()
            .unwrap()
    }

    #[test]
    fn uniform_placement_spreads_vehicles() {
        let lane = Lane::with_uniform_placement(params(100, 4, 0.0), Boundary::Closed, 1).unwrap();
        let pos: Vec<usize> = lane.vehicles().iter().map(|v| v.position()).collect();
        assert_eq!(pos, vec![0, 25, 50, 75]);
    }

    #[test]
    fn random_placement_has_distinct_positions_and_exact_count() {
        for seed in 0..20 {
            let lane =
                Lane::with_random_placement(params(50, 25, 0.5), Boundary::Closed, seed).unwrap();
            assert_eq!(lane.vehicle_count(), 25);
            let mut pos: Vec<usize> = lane.vehicles().iter().map(|v| v.position()).collect();
            let before = pos.len();
            pos.dedup();
            assert_eq!(pos.len(), before);
        }
    }

    #[test]
    fn from_positions_rejects_duplicates_and_unsorted() {
        let p = params(10, 2, 0.0);
        assert!(Lane::from_positions(p, Boundary::Closed, &[3, 3], &[0, 0], 0).is_err());
        assert!(Lane::from_positions(p, Boundary::Closed, &[5, 2], &[0, 0], 0).is_err());
        assert!(Lane::from_positions(p, Boundary::Closed, &[5, 10], &[0, 0], 0).is_err());
        assert!(Lane::from_positions(p, Boundary::Closed, &[5], &[0, 0], 0).is_err());
    }

    #[test]
    fn lone_vehicle_reaches_vmax_and_cruises() {
        let p = params(100, 1, 0.0);
        let mut lane = Lane::with_uniform_placement(p, Boundary::Closed, 0).unwrap();
        for _ in 0..10 {
            lane.step();
        }
        assert_eq!(lane.vehicles()[0].velocity(), 5);
        // Deterministic free flow: average velocity equals vmax.
        assert!((lane.average_velocity() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_free_flow_average_velocity_is_vmax() {
        // ρ well below the critical 1/(vmax+1): free-flow regime.
        let p = params(400, 40, 0.0);
        let mut lane = Lane::with_uniform_placement(p, Boundary::Closed, 0).unwrap();
        for _ in 0..200 {
            lane.step();
        }
        assert!((lane.average_velocity() - 5.0).abs() < 1e-12);
        assert!((lane.flow() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jammed_deterministic_flow_matches_theory() {
        // For ρ > 1/(vmax+1), deterministic NaS stationary flow is 1 − ρ.
        let p = params(400, 200, 0.0); // ρ = 0.5
        let mut lane = Lane::with_uniform_placement(p, Boundary::Closed, 0).unwrap();
        for _ in 0..2000 {
            lane.step();
        }
        let mut flows = Vec::new();
        for _ in 0..200 {
            lane.step();
            flows.push(lane.flow());
        }
        let mean: f64 = flows.iter().sum::<f64>() / flows.len() as f64;
        assert!(
            (mean - 0.5).abs() < 0.02,
            "deterministic jammed flow should be 1 − ρ = 0.5, got {mean}"
        );
    }

    #[test]
    fn velocity_never_exceeds_gap_or_vmax() {
        let p = params(200, 100, 0.5);
        let mut lane = Lane::with_random_placement(p, Boundary::Closed, 9).unwrap();
        for _ in 0..300 {
            lane.step();
            for v in lane.vehicles() {
                assert!(v.velocity() <= 5);
            }
        }
    }

    #[test]
    fn closed_lane_conserves_vehicles() {
        let p = params(100, 30, 0.3);
        let mut lane = Lane::with_random_placement(p, Boundary::Closed, 5).unwrap();
        for _ in 0..500 {
            lane.step();
            assert_eq!(lane.vehicle_count(), 30);
        }
    }

    #[test]
    fn recycling_lane_conserves_vehicles_and_flags_teleports() {
        let p = params(50, 5, 0.0);
        let mut lane = Lane::with_uniform_placement(p, Boundary::Recycling, 3).unwrap();
        let mut saw_teleport = false;
        for _ in 0..200 {
            lane.step();
            assert_eq!(lane.vehicle_count(), 5);
            if lane.vehicles().iter().any(|v| v.wrapped_last_step()) {
                saw_teleport = true;
            }
        }
        assert!(saw_teleport, "vehicles should have been recycled");
    }

    #[test]
    fn open_lane_drains_without_injection() {
        let p = params(30, 10, 0.0);
        let mut lane = Lane::with_uniform_placement(
            p,
            Boundary::Open {
                injection_rate: 0.0,
            },
            3,
        )
        .unwrap();
        for _ in 0..100 {
            lane.step();
        }
        assert_eq!(lane.vehicle_count(), 0);
        assert_eq!(lane.removed_count(), 10);
    }

    #[test]
    fn open_lane_injects_vehicles() {
        let p = params(50, 1, 0.0);
        let mut lane = Lane::with_uniform_placement(
            p,
            Boundary::Open {
                injection_rate: 0.5,
            },
            3,
        )
        .unwrap();
        for _ in 0..200 {
            lane.step();
        }
        assert!(lane.injected_count() > 10);
        // Injected + initial − removed = current.
        assert_eq!(
            1 + lane.injected_count() as i64 - lane.removed_count() as i64,
            lane.vehicle_count() as i64
        );
    }

    #[test]
    fn seam_flow_approaches_fundamental_flow() {
        let p = params(400, 100, 0.0); // ρ = 0.25 > 1/6 ⇒ stationary J = 1 − ρ = 0.75
        let mut lane = Lane::with_uniform_placement(p, Boundary::Closed, 0).unwrap();
        // Warm up past the transient, then compare seam rate to ρ·v̄.
        for _ in 0..3000 {
            lane.step();
        }
        let j_state = lane.flow();
        let seam = lane.seam_flow_rate();
        assert!(
            (seam - j_state).abs() < 0.1,
            "seam flow {seam} should approximate state flow {j_state}"
        );
    }

    #[test]
    fn occupancy_row_matches_paper_encoding() {
        let p = params(10, 2, 0.0);
        let lane = Lane::from_positions(p, Boundary::Closed, &[2, 7], &[1, 3], 0).unwrap();
        let row = lane.occupancy_row();
        assert_eq!(row.len(), 10);
        assert_eq!(row[2], 1);
        assert_eq!(row[7], 3);
        assert_eq!(row.iter().filter(|&&x| x == -1).count(), 8);
    }

    #[test]
    fn same_seed_same_trajectory() {
        let p = params(100, 40, 0.5);
        let mut a = Lane::with_random_placement(p, Boundary::Closed, 77).unwrap();
        let mut b = Lane::with_random_placement(p, Boundary::Closed, 77).unwrap();
        for _ in 0..100 {
            a.step();
            b.step();
        }
        assert_eq!(a.occupancy_row(), b.occupancy_row());
    }

    #[test]
    fn different_seed_different_trajectory() {
        let p = params(100, 40, 0.5);
        let mut a = Lane::with_random_placement(p, Boundary::Closed, 1).unwrap();
        let mut b = Lane::with_random_placement(p, Boundary::Closed, 2).unwrap();
        for _ in 0..20 {
            a.step();
            b.step();
        }
        assert_ne!(a.occupancy_row(), b.occupancy_row());
    }

    #[test]
    fn run_collect_velocity_length_and_range() {
        let p = params(100, 20, 0.3);
        let mut lane = Lane::with_uniform_placement(p, Boundary::Closed, 4).unwrap();
        let series = lane.run_collect_velocity(250);
        assert_eq!(series.len(), 250);
        assert!(series.iter().all(|&v| (0.0..=5.0).contains(&v)));
    }

    #[test]
    fn positions_m_scale() {
        let p = params(10, 1, 0.0);
        let lane = Lane::from_positions(p, Boundary::Closed, &[4], &[0], 0).unwrap();
        assert!((lane.positions_m()[0] - 30.0).abs() < 1e-12);
    }

    #[test]
    fn full_lane_is_frozen() {
        // Every site occupied: all gaps are 0, nobody can ever move.
        let p = params(6, 6, 0.0);
        let positions: Vec<usize> = (0..6).collect();
        let mut lane = Lane::from_positions(p, Boundary::Closed, &positions, &[0; 6], 0).unwrap();
        for _ in 0..10 {
            lane.step();
        }
        assert!((lane.average_velocity()).abs() < 1e-12);
        let pos: Vec<usize> = lane.vehicles().iter().map(|v| v.position()).collect();
        assert_eq!(pos, positions);
    }

    #[test]
    fn snapshot_resume_matches_straight_run() {
        // Straight run: 300 steps. Resumed run: 100 steps, capture, restore
        // into a fresh lane, 200 more steps. Trajectories must be
        // bit-identical (the RNG stream is part of the snapshot).
        let p = params(120, 50, 0.4);
        let mut straight = Lane::with_random_placement(p, Boundary::Closed, 21).unwrap();
        let mut first = Lane::with_random_placement(p, Boundary::Closed, 21).unwrap();
        for _ in 0..100 {
            straight.step();
            first.step();
        }
        let mut w = WireWriter::new();
        first.capture(&mut w);
        let bytes = w.into_bytes();

        let mut resumed = Lane::with_random_placement(p, Boundary::Closed, 999).unwrap();
        let mut r = WireReader::new(&bytes);
        resumed.restore(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(resumed.time(), 100);
        assert_eq!(resumed.occupancy_row(), first.occupancy_row());

        for _ in 0..200 {
            straight.step();
            resumed.step();
        }
        assert_eq!(resumed.occupancy_row(), straight.occupancy_row());
        assert_eq!(resumed.seam_flow_rate(), straight.seam_flow_rate());
    }

    #[test]
    fn snapshot_round_trips_open_lane_counters() {
        let p = params(50, 5, 0.3);
        let boundary = Boundary::Open {
            injection_rate: 0.4,
        };
        let mut lane = Lane::with_uniform_placement(p, boundary, 3).unwrap();
        for _ in 0..80 {
            lane.step();
        }
        let mut w = WireWriter::new();
        lane.capture(&mut w);
        let bytes = w.into_bytes();

        let mut restored = Lane::with_uniform_placement(p, boundary, 77).unwrap();
        let mut r = WireReader::new(&bytes);
        restored.restore(&mut r).unwrap();
        assert_eq!(restored.injected_count(), lane.injected_count());
        assert_eq!(restored.removed_count(), lane.removed_count());
        let mut w2 = WireWriter::new();
        restored.capture(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "round trip not bit-identical");
    }

    #[test]
    fn restore_rejects_foreign_and_truncated_snapshots() {
        let big = params(200, 60, 0.2);
        let mut lane = Lane::with_random_placement(big, Boundary::Closed, 5).unwrap();
        for _ in 0..50 {
            lane.step();
        }
        let mut w = WireWriter::new();
        lane.capture(&mut w);
        let bytes = w.into_bytes();

        // A shorter lane cannot hold these positions.
        let small = params(40, 10, 0.2);
        let mut wrong = Lane::with_uniform_placement(small, Boundary::Closed, 5).unwrap();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            wrong.restore(&mut r),
            Err(WireError::Malformed {
                what: "vehicle position out of lane",
                ..
            })
        ));

        let mut fresh = Lane::with_random_placement(big, Boundary::Closed, 5).unwrap();
        let mut r = WireReader::new(&bytes[..bytes.len() - 5]);
        assert!(matches!(
            fresh.restore(&mut r),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn p_equal_one_limits_speed() {
        // With p = 1 every vehicle slows each step; velocity is capped at
        // vmax − 1 in steady state.
        let p = params(200, 10, 1.0);
        let mut lane = Lane::with_uniform_placement(p, Boundary::Closed, 0).unwrap();
        for _ in 0..100 {
            lane.step();
        }
        for v in lane.vehicles() {
            assert!(v.velocity() <= 4);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// For every boundary condition, stepping preserves the structural
        /// invariants: sorted distinct positions in range, bounded
        /// velocities.
        #[test]
        fn any_boundary_structural_invariants(
            length in 8usize..150,
            count in 1usize..40,
            p in 0.0f64..1.0,
            seed in any::<u64>(),
            boundary_pick in 0u8..3,
            steps in 1usize..80,
        ) {
            prop_assume!(count <= length);
            let params = NasParams::builder()
                .length(length)
                .vehicle_count(count)
                .slowdown_probability(p)
                .build()
                .unwrap();
            let boundary = match boundary_pick {
                0 => Boundary::Closed,
                1 => Boundary::Recycling,
                _ => Boundary::Open { injection_rate: 0.3 },
            };
            let mut lane = Lane::with_random_placement(params, boundary, seed).unwrap();
            for _ in 0..steps {
                lane.step();
                let mut last = None;
                for v in lane.vehicles() {
                    prop_assert!(v.position() < length);
                    prop_assert!(v.velocity() <= params.vmax());
                    if let Some(prev) = last {
                        prop_assert!(v.position() > prev);
                    }
                    last = Some(v.position());
                }
                if boundary.conserves_vehicles() {
                    prop_assert_eq!(lane.vehicle_count(), count);
                }
            }
        }

        /// Deterministic rule: identical seeds and parameters give
        /// identical evolution, step by step.
        #[test]
        fn determinism(
            length in 10usize..100,
            count in 1usize..30,
            p in 0.0f64..1.0,
            seed in any::<u64>(),
        ) {
            prop_assume!(count <= length);
            let params = NasParams::builder()
                .length(length)
                .vehicle_count(count)
                .slowdown_probability(p)
                .build()
                .unwrap();
            let mut a = Lane::with_random_placement(params, Boundary::Closed, seed).unwrap();
            let mut b = Lane::with_random_placement(params, Boundary::Closed, seed).unwrap();
            for _ in 0..40 {
                a.step();
                b.step();
                prop_assert_eq!(a.occupancy_row(), b.occupancy_row());
            }
        }

        /// On a closed deterministic lane, total momentum (sum of
        /// velocities) equals total displacement per step.
        #[test]
        fn velocity_equals_displacement(
            length in 20usize..200,
            count in 2usize..40,
            seed in any::<u64>(),
        ) {
            prop_assume!(count <= length / 2);
            let params = NasParams::builder()
                .length(length)
                .vehicle_count(count)
                .build()
                .unwrap();
            let mut lane = Lane::with_random_placement(params, Boundary::Closed, seed).unwrap();
            for _ in 0..30 {
                let before: u64 = lane
                    .vehicles()
                    .iter()
                    .map(|v| v.odometer_cells(length))
                    .sum();
                lane.step();
                let after: u64 = lane
                    .vehicles()
                    .iter()
                    .map(|v| v.odometer_cells(length))
                    .sum();
                let velocity_sum: u64 =
                    lane.vehicles().iter().map(|v| u64::from(v.velocity())).sum();
                prop_assert_eq!(after - before, velocity_sum);
            }
        }
    }
}
