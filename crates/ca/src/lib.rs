//! # cavenet-ca — Nagel–Schreckenberg cellular-automaton traffic model
//!
//! This crate implements the microscopic vehicular mobility model at the core
//! of CAVENET: the 1-dimensional cellular automaton (CA) of Nagel and
//! Schreckenberg ("NaS", *J. Phys. I France* 2, 1992), in both its
//! deterministic (`p = 0`) and stochastic (`0 < p ≤ 1`) form.
//!
//! A lane of `L` sites evolves in discrete time steps `Δt`. Each site either
//! holds a vehicle with an integer velocity `v ∈ {0, …, v_max}` or is empty.
//! At every step the following rules are applied **in parallel** to all
//! vehicles:
//!
//! 1. *Acceleration*: `v ← min(v + 1, v_max)`
//! 2. *Slowing down*: `v ← min(v, gap)` where `gap` is the number of empty
//!    sites in front of the vehicle
//! 3. *Randomization*: with probability `p`, `v ← max(v − 1, 0)`
//! 4. *Movement*: `x ← x + v`
//!
//! With cell length `s = 7.5 m` and `Δt = 1 s`, `v_max = 5` corresponds to
//! 135 km/h — the defaults used throughout the CAVENET paper.
//!
//! ## Boundaries: the paper's "improvement"
//!
//! The first version of CAVENET moved vehicles along a straight line and
//! teleported a vehicle reaching the end back to the start
//! ([`Boundary::Recycling`]). This broke head↔tail communication and caused
//! re-entry delays. The improved version closes the lane into a ring
//! ([`Boundary::Closed`]), so positions wrap modulo `L` and the lead vehicle's
//! gap is measured around the ring. [`Boundary::Open`] additionally models an
//! open road with stochastic injection, beyond the paper.
//!
//! ## Quick example
//!
//! ```
//! use cavenet_ca::{Lane, NasParams, Boundary};
//!
//! # fn main() -> Result<(), cavenet_ca::CaError> {
//! let params = NasParams::builder()
//!     .length(400)
//!     .density(0.1)
//!     .slowdown_probability(0.3)
//!     .build()?;
//! let mut lane = Lane::with_uniform_placement(params, Boundary::Closed, 42)?;
//! for _ in 0..500 {
//!     lane.step();
//! }
//! println!("mean velocity = {}", lane.average_velocity());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boundary;
mod error;
mod jams;
mod lane;
mod measure;
mod multilane;
mod params;
mod spacetime;
mod vehicle;

pub use boundary::Boundary;
pub use error::CaError;
pub use jams::{JamCluster, JamSnapshot};
pub use lane::Lane;
pub use measure::{FundamentalDiagram, FundamentalPoint, LaneObservation};
pub use multilane::{LaneChange, MultiLaneParams, MultiLaneRoad};
pub use params::{NasParams, NasParamsBuilder, CELL_LENGTH_M, DEFAULT_VMAX};
pub use spacetime::{SpaceTimeCell, SpaceTimeDiagram};
pub use vehicle::{Vehicle, VehicleId};
