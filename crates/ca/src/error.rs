//! Error types for CA model construction and stepping.

use std::error::Error;
use std::fmt;

/// Error raised when constructing or manipulating a cellular-automaton model
/// with invalid parameters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CaError {
    /// The requested lane length is zero.
    ZeroLength,
    /// The slow-down probability is outside `[0, 1]` or not finite.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// The requested density is outside `(0, 1]` or not finite.
    InvalidDensity {
        /// The offending value.
        value: f64,
    },
    /// More vehicles were requested than the lane has sites.
    TooManyVehicles {
        /// Number of vehicles requested.
        vehicles: usize,
        /// Number of sites available.
        sites: usize,
    },
    /// A vehicle was placed on an already-occupied or out-of-range site.
    InvalidPlacement {
        /// The offending site index.
        site: usize,
    },
    /// `v_max` of zero would freeze all traffic.
    ZeroVmax,
    /// A multi-lane road requires at least one lane.
    NoLanes,
}

impl fmt::Display for CaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaError::ZeroLength => write!(f, "lane length must be at least 1 site"),
            CaError::InvalidProbability { value } => {
                write!(f, "slow-down probability {value} is not in [0, 1]")
            }
            CaError::InvalidDensity { value } => {
                write!(f, "vehicle density {value} is not in (0, 1]")
            }
            CaError::TooManyVehicles { vehicles, sites } => {
                write!(f, "{vehicles} vehicles do not fit on {sites} sites")
            }
            CaError::InvalidPlacement { site } => {
                write!(f, "site {site} is occupied or out of range")
            }
            CaError::ZeroVmax => write!(f, "v_max must be at least 1"),
            CaError::NoLanes => write!(f, "a road needs at least one lane"),
        }
    }
}

impl Error for CaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errors = [
            CaError::ZeroLength,
            CaError::InvalidProbability { value: 1.5 },
            CaError::InvalidDensity { value: -0.1 },
            CaError::TooManyVehicles {
                vehicles: 10,
                sites: 5,
            },
            CaError::InvalidPlacement { site: 99 },
            CaError::ZeroVmax,
            CaError::NoLanes,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.chars().next().unwrap().is_uppercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CaError>();
    }
}
