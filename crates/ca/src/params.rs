//! Model parameters for the Nagel–Schreckenberg automaton.

use crate::CaError;

/// Physical length of one CA cell in metres.
///
/// The paper fixes `Δt = 1 s` and `v_max = 135 km/h = 37.5 m/s`; with
/// `v_max = 5` cells per step this yields `s = 7.5 m` per cell.
pub const CELL_LENGTH_M: f64 = 7.5;

/// Default maximum velocity in cells per time step (135 km/h at 7.5 m cells
/// and 1 s steps).
pub const DEFAULT_VMAX: u32 = 5;

/// Parameters of a Nagel–Schreckenberg lane.
///
/// Construct via [`NasParams::builder`] (validating) or use
/// [`NasParams::default`] for the paper's defaults (`L = 400`, `ρ = 0.1`,
/// `p = 0`, `v_max = 5`).
///
/// ```
/// use cavenet_ca::NasParams;
/// let p = NasParams::builder().length(100).vehicle_count(10).build().unwrap();
/// assert_eq!(p.vehicles(), 10);
/// assert!((p.density() - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NasParams {
    length: usize,
    vehicles: usize,
    vmax: u32,
    p: f64,
    cell_length_m: f64,
    dt_s: f64,
}

impl NasParams {
    /// Start building a parameter set.
    pub fn builder() -> NasParamsBuilder {
        NasParamsBuilder::new()
    }

    /// Number of sites `L` on the lane.
    pub fn length(&self) -> usize {
        self.length
    }

    /// Number of vehicles `N` on the lane.
    pub fn vehicles(&self) -> usize {
        self.vehicles
    }

    /// Maximum velocity `v_max` in cells per step.
    pub fn vmax(&self) -> u32 {
        self.vmax
    }

    /// Random slow-down probability `p` (rule 3).
    pub fn slowdown_probability(&self) -> f64 {
        self.p
    }

    /// Vehicle density `ρ = N / L`.
    pub fn density(&self) -> f64 {
        self.vehicles as f64 / self.length as f64
    }

    /// Whether the model is deterministic (`p = 0` — rule 2′ never fires).
    ///
    /// `p = 1` is also deterministic in the sense of the paper (every vehicle
    /// always slows), but we report determinism only for `p = 0` because the
    /// implementation short-circuits the RNG in that case alone.
    pub fn is_deterministic(&self) -> bool {
        self.p == 0.0
    }

    /// Physical cell length in metres.
    pub fn cell_length_m(&self) -> f64 {
        self.cell_length_m
    }

    /// Physical time-step duration in seconds.
    pub fn dt_s(&self) -> f64 {
        self.dt_s
    }

    /// Lane length in metres (`L · s`).
    pub fn length_m(&self) -> f64 {
        self.length as f64 * self.cell_length_m
    }

    /// Convert a velocity in cells/step to metres/second.
    pub fn velocity_to_mps(&self, v_cells: u32) -> f64 {
        v_cells as f64 * self.cell_length_m / self.dt_s
    }

    /// Convert a velocity in cells/step to kilometres/hour.
    pub fn velocity_to_kmh(&self, v_cells: u32) -> f64 {
        self.velocity_to_mps(v_cells) * 3.6
    }
}

impl Default for NasParams {
    /// The CAVENET paper's default configuration: `L = 400`, `ρ = 0.1`,
    /// `p = 0`, `v_max = 5`, `s = 7.5 m`, `Δt = 1 s`.
    fn default() -> Self {
        NasParams {
            length: 400,
            vehicles: 40,
            vmax: DEFAULT_VMAX,
            p: 0.0,
            cell_length_m: CELL_LENGTH_M,
            dt_s: 1.0,
        }
    }
}

/// Builder for [`NasParams`].
///
/// Either [`density`](NasParamsBuilder::density) or
/// [`vehicle_count`](NasParamsBuilder::vehicle_count) may be given; the last
/// call wins. With a density, the vehicle count is `round(ρ · L)`, clamped to
/// at least 1.
#[derive(Debug, Clone)]
pub struct NasParamsBuilder {
    length: usize,
    count: CountSpec,
    vmax: u32,
    p: f64,
    cell_length_m: f64,
    dt_s: f64,
}

#[derive(Debug, Clone, Copy)]
enum CountSpec {
    Density(f64),
    Count(usize),
}

impl NasParamsBuilder {
    fn new() -> Self {
        NasParamsBuilder {
            length: 400,
            count: CountSpec::Density(0.1),
            vmax: DEFAULT_VMAX,
            p: 0.0,
            cell_length_m: CELL_LENGTH_M,
            dt_s: 1.0,
        }
    }

    /// Set the number of sites `L`.
    pub fn length(&mut self, sites: usize) -> &mut Self {
        self.length = sites;
        self
    }

    /// Set the vehicle density `ρ`; the vehicle count becomes `round(ρ·L)`.
    pub fn density(&mut self, rho: f64) -> &mut Self {
        self.count = CountSpec::Density(rho);
        self
    }

    /// Set the exact number of vehicles `N`.
    pub fn vehicle_count(&mut self, n: usize) -> &mut Self {
        self.count = CountSpec::Count(n);
        self
    }

    /// Set the maximum velocity in cells per step.
    pub fn vmax(&mut self, vmax: u32) -> &mut Self {
        self.vmax = vmax;
        self
    }

    /// Set the random slow-down probability `p ∈ [0, 1]`.
    pub fn slowdown_probability(&mut self, p: f64) -> &mut Self {
        self.p = p;
        self
    }

    /// Set the physical cell length in metres (default 7.5).
    pub fn cell_length_m(&mut self, s: f64) -> &mut Self {
        self.cell_length_m = s;
        self
    }

    /// Set the physical step duration in seconds (default 1.0).
    pub fn dt_s(&mut self, dt: f64) -> &mut Self {
        self.dt_s = dt;
        self
    }

    /// Validate and produce the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`CaError`] if the length is zero, `v_max` is zero, `p` is not
    /// in `[0, 1]`, the density is not in `(0, 1]`, or the vehicle count
    /// exceeds the number of sites.
    pub fn build(&self) -> Result<NasParams, CaError> {
        if self.length == 0 {
            return Err(CaError::ZeroLength);
        }
        if self.vmax == 0 {
            return Err(CaError::ZeroVmax);
        }
        if !self.p.is_finite() || !(0.0..=1.0).contains(&self.p) {
            return Err(CaError::InvalidProbability { value: self.p });
        }
        let vehicles = match self.count {
            CountSpec::Density(rho) => {
                if !rho.is_finite() || rho <= 0.0 || rho > 1.0 {
                    return Err(CaError::InvalidDensity { value: rho });
                }
                ((rho * self.length as f64).round() as usize).max(1)
            }
            CountSpec::Count(n) => n,
        };
        if vehicles > self.length {
            return Err(CaError::TooManyVehicles {
                vehicles,
                sites: self.length,
            });
        }
        Ok(NasParams {
            length: self.length,
            vehicles,
            vmax: self.vmax,
            p: self.p,
            cell_length_m: self.cell_length_m,
            dt_s: self.dt_s,
        })
    }
}

impl Default for NasParamsBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = NasParams::default();
        assert_eq!(p.length(), 400);
        assert_eq!(p.vehicles(), 40);
        assert_eq!(p.vmax(), 5);
        assert_eq!(p.slowdown_probability(), 0.0);
        assert!(p.is_deterministic());
        assert!(
            (p.length_m() - 3000.0).abs() < 1e-9,
            "400 cells = 3 km ring"
        );
    }

    #[test]
    fn density_converts_to_count() {
        let p = NasParams::builder()
            .length(400)
            .density(0.5)
            .build()
            .unwrap();
        assert_eq!(p.vehicles(), 200);
        assert!((p.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tiny_density_yields_at_least_one_vehicle() {
        let p = NasParams::builder()
            .length(10)
            .density(0.001)
            .build()
            .unwrap();
        assert_eq!(p.vehicles(), 1);
    }

    #[test]
    fn rejects_zero_length() {
        assert_eq!(
            NasParams::builder().length(0).build().unwrap_err(),
            CaError::ZeroLength
        );
    }

    #[test]
    fn rejects_bad_probability() {
        assert!(matches!(
            NasParams::builder().slowdown_probability(1.5).build(),
            Err(CaError::InvalidProbability { .. })
        ));
        assert!(matches!(
            NasParams::builder().slowdown_probability(f64::NAN).build(),
            Err(CaError::InvalidProbability { .. })
        ));
        assert!(matches!(
            NasParams::builder().slowdown_probability(-0.1).build(),
            Err(CaError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn rejects_bad_density() {
        for rho in [0.0, -1.0, 1.1, f64::INFINITY] {
            assert!(matches!(
                NasParams::builder().density(rho).build(),
                Err(CaError::InvalidDensity { .. })
            ));
        }
    }

    #[test]
    fn rejects_overfull_lane() {
        assert!(matches!(
            NasParams::builder().length(5).vehicle_count(6).build(),
            Err(CaError::TooManyVehicles { .. })
        ));
    }

    #[test]
    fn full_lane_is_allowed() {
        let p = NasParams::builder()
            .length(5)
            .vehicle_count(5)
            .build()
            .unwrap();
        assert_eq!(p.vehicles(), 5);
        assert!((p.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_zero_vmax() {
        assert_eq!(
            NasParams::builder().vmax(0).build().unwrap_err(),
            CaError::ZeroVmax
        );
    }

    #[test]
    fn unit_conversions() {
        let p = NasParams::default();
        assert!((p.velocity_to_mps(5) - 37.5).abs() < 1e-9);
        assert!((p.velocity_to_kmh(5) - 135.0).abs() < 1e-9);
        assert!((p.velocity_to_kmh(0)).abs() < 1e-12);
    }

    #[test]
    fn p_equal_one_is_valid_and_not_reported_deterministic() {
        let p = NasParams::builder()
            .slowdown_probability(1.0)
            .build()
            .unwrap();
        assert!(!p.is_deterministic());
    }
}
