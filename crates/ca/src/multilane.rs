//! Multi-lane extension of the NaS automaton.
//!
//! The CAVENET paper motivates multi-lane roads (Fig. 1) — relay nodes on a
//! parallel lane can fill connectivity gaps, and opposite-lane traffic adds
//! interference — and the BA block "can analyze and design single and
//! multiple lanes traces". This module implements a multi-lane ring with the
//! symmetric lane-changing rules of Rickert, Nagel, Schreckenberg and Latour
//! (*Physica A* 231, 1996): a vehicle changes lanes when it is hindered in
//! its own lane, the target lane offers more room, and the manoeuvre is safe.

use cavenet_rng::SimRng;

use crate::{CaError, NasParams, VehicleId};

/// A recorded lane-change event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneChange {
    /// When the change happened (steps).
    pub time: u64,
    /// Which vehicle changed.
    pub vehicle: VehicleId,
    /// Source lane index.
    pub from_lane: usize,
    /// Destination lane index.
    pub to_lane: usize,
    /// Site index at which the change happened.
    pub position: usize,
}

/// Parameters of a multi-lane ring road.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiLaneParams {
    /// Per-lane NaS parameters. `vehicles()` is interpreted **per lane**.
    pub nas: NasParams,
    /// Number of parallel lanes (≥ 1).
    pub lanes: usize,
    /// Probability that an advantageous, safe lane change is actually taken.
    pub change_probability: f64,
}

impl MultiLaneParams {
    /// Validated constructor.
    ///
    /// # Errors
    ///
    /// Returns [`CaError::NoLanes`] for `lanes == 0` and
    /// [`CaError::InvalidProbability`] for a change probability outside
    /// `[0, 1]`.
    pub fn new(nas: NasParams, lanes: usize, change_probability: f64) -> Result<Self, CaError> {
        if lanes == 0 {
            return Err(CaError::NoLanes);
        }
        if !change_probability.is_finite() || !(0.0..=1.0).contains(&change_probability) {
            return Err(CaError::InvalidProbability {
                value: change_probability,
            });
        }
        Ok(MultiLaneParams {
            nas,
            lanes,
            change_probability,
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct MlVehicle {
    id: VehicleId,
    lane: usize,
    pos: usize,
    vel: u32,
}

/// A multi-lane ring road with lane changing.
///
/// All lanes share the same length and the closed (ring) boundary; this is
/// the improved-CAVENET geometry generalized to `k` parallel lanes.
///
/// ```
/// use cavenet_ca::{MultiLaneRoad, MultiLaneParams, NasParams};
/// # fn main() -> Result<(), cavenet_ca::CaError> {
/// let nas = NasParams::builder().length(100).density(0.15)
///     .slowdown_probability(0.2).build()?;
/// let params = MultiLaneParams::new(nas, 2, 0.8)?;
/// let mut road = MultiLaneRoad::new(params, 11)?;
/// for _ in 0..50 { road.step(); }
/// assert!(road.change_count() > 0 || road.average_velocity() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultiLaneRoad {
    params: MultiLaneParams,
    vehicles: Vec<MlVehicle>,
    rng: SimRng,
    time: u64,
    changes: u64,
    recent_changes: Vec<LaneChange>,
}

impl MultiLaneRoad {
    /// Build a road with `params.nas.vehicles()` vehicles per lane, spread
    /// uniformly, all initially at velocity 0.
    ///
    /// # Errors
    ///
    /// Returns [`CaError`] when vehicles do not fit on a lane.
    pub fn new(params: MultiLaneParams, seed: u64) -> Result<Self, CaError> {
        let n = params.nas.vehicles();
        let l = params.nas.length();
        if n > l {
            return Err(CaError::TooManyVehicles {
                vehicles: n,
                sites: l,
            });
        }
        let mut vehicles = Vec::with_capacity(n * params.lanes);
        let mut next = 0u32;
        for lane in 0..params.lanes {
            // Stagger lanes by a fraction of the spacing so parallel lanes
            // do not start with perfectly aligned vehicles (and hence
            // perfectly aligned gaps).
            let offset = lane * l / (n * params.lanes).max(1);
            for i in 0..n {
                vehicles.push(MlVehicle {
                    id: VehicleId(next),
                    lane,
                    pos: (i * l / n + offset) % l,
                    vel: 0,
                });
                next += 1;
            }
        }
        Ok(MultiLaneRoad {
            params,
            vehicles,
            rng: SimRng::seed_from_u64(seed),
            time: 0,
            changes: 0,
            recent_changes: Vec::new(),
        })
    }

    /// Parameters of the road.
    pub fn params(&self) -> &MultiLaneParams {
        &self.params
    }

    /// Steps performed so far.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Total number of committed lane changes.
    pub fn change_count(&self) -> u64 {
        self.changes
    }

    /// Lane changes committed during the most recent step.
    pub fn recent_changes(&self) -> &[LaneChange] {
        &self.recent_changes
    }

    /// Total number of vehicles across all lanes.
    pub fn vehicle_count(&self) -> usize {
        self.vehicles.len()
    }

    /// Number of vehicles currently on lane `k`.
    pub fn lane_count(&self, k: usize) -> usize {
        self.vehicles.iter().filter(|v| v.lane == k).count()
    }

    /// Average velocity over all vehicles (cells/step).
    pub fn average_velocity(&self) -> f64 {
        if self.vehicles.is_empty() {
            return 0.0;
        }
        let s: u64 = self.vehicles.iter().map(|v| u64::from(v.vel)).sum();
        s as f64 / self.vehicles.len() as f64
    }

    /// Positions of all vehicles as `(lane, site, velocity, id)` tuples,
    /// sorted by lane then position.
    pub fn snapshot(&self) -> Vec<(usize, usize, u32, VehicleId)> {
        let mut v: Vec<_> = self
            .vehicles
            .iter()
            .map(|m| (m.lane, m.pos, m.vel, m.id))
            .collect();
        v.sort();
        v
    }

    /// The paper's occupancy-row encoding for lane `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= params.lanes`.
    pub fn occupancy_row(&self, k: usize) -> Vec<i32> {
        assert!(k < self.params.lanes, "lane index out of range");
        let mut row = vec![-1; self.params.nas.length()];
        for v in self.vehicles.iter().filter(|v| v.lane == k) {
            row[v.pos] = v.vel as i32;
        }
        row
    }

    /// One time step: parallel lane-change sub-step, then an independent NaS
    /// update of each lane.
    pub fn step(&mut self) {
        self.lane_change_substep();
        self.nas_substep();
        self.time += 1;
    }

    fn occupancy(&self) -> Vec<Vec<bool>> {
        let l = self.params.nas.length();
        let mut occ = vec![vec![false; l]; self.params.lanes];
        for v in &self.vehicles {
            occ[v.lane][v.pos] = true;
        }
        occ
    }

    /// Gap (free cells) ahead of position `pos` on `lane`, looking at most
    /// `horizon` cells around the ring.
    fn gap_ahead(occ: &[Vec<bool>], lane: usize, pos: usize, horizon: u32, l: usize) -> u32 {
        for d in 1..=horizon {
            if occ[lane][(pos + d as usize) % l] {
                return d - 1;
            }
        }
        horizon
    }

    /// Gap (free cells) behind position `pos` on `lane` (not counting `pos`).
    fn gap_behind(occ: &[Vec<bool>], lane: usize, pos: usize, horizon: u32, l: usize) -> u32 {
        for d in 1..=horizon {
            if occ[lane][(pos + l - d as usize) % l] {
                return d - 1;
            }
        }
        horizon
    }

    fn lane_change_substep(&mut self) {
        self.recent_changes.clear();
        if self.params.lanes < 2 {
            return;
        }
        let l = self.params.nas.length();
        let vmax = self.params.nas.vmax();
        let look = vmax + 1;
        let occ = self.occupancy();

        // Phase 1: every vehicle picks a desired lane from the frozen state.
        let mut desires: Vec<(usize, usize)> = Vec::new(); // (vehicle index, target lane)
        for (i, v) in self.vehicles.iter().enumerate() {
            let own_gap = Self::gap_ahead(&occ, v.lane, v.pos, look, l);
            // Incentive criterion: hindered in own lane.
            if own_gap >= (v.vel + 1).min(vmax) {
                continue;
            }
            let mut best: Option<(usize, u32)> = None;
            for target in neighbours(v.lane, self.params.lanes) {
                if occ[target][v.pos] {
                    continue; // target site itself occupied
                }
                let other_gap = Self::gap_ahead(&occ, target, v.pos, look, l);
                let back_gap = Self::gap_behind(&occ, target, v.pos, vmax, l);
                // Improvement + safety criteria.
                if other_gap > own_gap
                    && back_gap >= vmax
                    && best.is_none_or(|(_, g)| other_gap > g)
                {
                    best = Some((target, other_gap));
                }
            }
            if let Some((target, _)) = best {
                if self.rng.gen_bool(self.params.change_probability) {
                    desires.push((i, target));
                }
            }
        }

        // Phase 2: commit, resolving conflicts (two claims on one cell) in
        // favour of the lowest vehicle id, deterministically.
        desires.sort_by_key(|&(i, target)| (target, self.vehicles[i].pos, self.vehicles[i].id));
        let mut claimed = std::collections::HashSet::new();
        for (i, target) in desires {
            let pos = self.vehicles[i].pos;
            if claimed.insert((target, pos)) {
                let from = self.vehicles[i].lane;
                self.vehicles[i].lane = target;
                self.changes += 1;
                self.recent_changes.push(LaneChange {
                    time: self.time,
                    vehicle: self.vehicles[i].id,
                    from_lane: from,
                    to_lane: target,
                    position: pos,
                });
            }
        }
    }

    fn nas_substep(&mut self) {
        let l = self.params.nas.length();
        let vmax = self.params.nas.vmax();
        let p = self.params.nas.slowdown_probability();
        let occ = self.occupancy();

        // Velocity update from frozen configuration (parallel semantics).
        // The horizon vmax+1 suffices: velocities are capped at vmax.
        let mut new_vel = Vec::with_capacity(self.vehicles.len());
        for v in &self.vehicles {
            let gap = Self::gap_ahead(&occ, v.lane, v.pos, vmax + 1, l);
            let mut vel = (v.vel + 1).min(vmax).min(gap);
            if p > 0.0 && self.rng.gen_bool(p) {
                vel = vel.saturating_sub(1);
            }
            new_vel.push(vel);
        }
        for (v, vel) in self.vehicles.iter_mut().zip(new_vel) {
            v.vel = vel;
            v.pos = (v.pos + vel as usize) % l;
        }
        debug_assert!(
            self.no_collisions(),
            "multilane update produced a collision"
        );
    }

    fn no_collisions(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.vehicles.iter().all(|v| seen.insert((v.lane, v.pos)))
    }
}

/// Adjacent lane indices of `lane` on a road with `lanes` lanes.
fn neighbours(lane: usize, lanes: usize) -> impl Iterator<Item = usize> {
    let left = lane.checked_sub(1);
    let right = if lane + 1 < lanes {
        Some(lane + 1)
    } else {
        None
    };
    left.into_iter().chain(right)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(lanes: usize, l: usize, n: usize, p: f64, pc: f64, seed: u64) -> MultiLaneRoad {
        let nas = NasParams::builder()
            .length(l)
            .vehicle_count(n)
            .slowdown_probability(p)
            .build()
            .unwrap();
        MultiLaneRoad::new(MultiLaneParams::new(nas, lanes, pc).unwrap(), seed).unwrap()
    }

    #[test]
    fn rejects_zero_lanes() {
        let nas = NasParams::default();
        assert_eq!(
            MultiLaneParams::new(nas, 0, 0.5).unwrap_err(),
            CaError::NoLanes
        );
    }

    #[test]
    fn rejects_bad_change_probability() {
        let nas = NasParams::default();
        assert!(MultiLaneParams::new(nas, 2, 1.5).is_err());
        assert!(MultiLaneParams::new(nas, 2, -0.5).is_err());
    }

    #[test]
    fn single_lane_never_changes() {
        let mut road = mk(1, 100, 20, 0.3, 1.0, 1);
        for _ in 0..100 {
            road.step();
        }
        assert_eq!(road.change_count(), 0);
    }

    #[test]
    fn vehicle_count_is_conserved() {
        let mut road = mk(3, 100, 15, 0.3, 0.8, 2);
        for _ in 0..200 {
            road.step();
            assert_eq!(road.vehicle_count(), 45);
        }
    }

    #[test]
    fn lane_changes_happen_under_congestion() {
        // Stochastic noise desynchronizes the lanes, creating local
        // congestion differences that trigger changes.
        let nas = NasParams::builder()
            .length(60)
            .vehicle_count(20)
            .slowdown_probability(0.3)
            .build()
            .unwrap();
        let params = MultiLaneParams::new(nas, 2, 1.0).unwrap();
        let mut road = MultiLaneRoad::new(params, 3).unwrap();
        for _ in 0..100 {
            road.step();
        }
        assert!(
            road.change_count() > 0,
            "dense two-lane traffic should produce lane changes"
        );
    }

    #[test]
    fn no_changes_when_probability_zero() {
        let mut road = mk(2, 60, 20, 0.3, 0.0, 4);
        for _ in 0..100 {
            road.step();
        }
        assert_eq!(road.change_count(), 0);
    }

    #[test]
    fn occupancy_rows_consistent_with_counts() {
        let mut road = mk(2, 80, 10, 0.2, 0.5, 5);
        for _ in 0..50 {
            road.step();
        }
        let total: usize = (0..2)
            .map(|k| road.occupancy_row(k).iter().filter(|&&x| x >= 0).count())
            .sum();
        assert_eq!(total, road.vehicle_count());
        assert_eq!(road.lane_count(0) + road.lane_count(1), 20);
    }

    #[test]
    fn deterministic_with_seed() {
        let mut a = mk(2, 100, 25, 0.4, 0.7, 42);
        let mut b = mk(2, 100, 25, 0.4, 0.7, 42);
        for _ in 0..100 {
            a.step();
            b.step();
        }
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.change_count(), b.change_count());
    }

    #[test]
    fn velocities_bounded() {
        let mut road = mk(3, 90, 20, 0.5, 0.5, 6);
        for _ in 0..150 {
            road.step();
            for (_, _, vel, _) in road.snapshot() {
                assert!(vel <= 5);
            }
        }
    }

    #[test]
    fn neighbours_of_middle_lane() {
        let n: Vec<usize> = neighbours(1, 3).collect();
        assert_eq!(n, vec![0, 2]);
        let n: Vec<usize> = neighbours(0, 3).collect();
        assert_eq!(n, vec![1]);
        let n: Vec<usize> = neighbours(2, 3).collect();
        assert_eq!(n, vec![1]);
    }

    #[test]
    fn recent_changes_reset_each_step() {
        let mut road = mk(2, 40, 15, 0.3, 1.0, 7);
        let mut total = 0;
        for _ in 0..100 {
            road.step();
            total += road.recent_changes().len() as u64;
        }
        assert_eq!(total, road.change_count());
    }
}
