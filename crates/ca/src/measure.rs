//! Macroscopic measurement of a lane: density, flow, and the fundamental
//! diagram (paper Fig. 4).

use crate::{Boundary, CaError, Lane, NasParams};

/// One observation of a lane's macroscopic state at a given time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneObservation {
    /// Simulation time (steps).
    pub time: u64,
    /// Density `ρ = N/L`.
    pub density: f64,
    /// Average velocity `v̄` (cells/step).
    pub mean_velocity: f64,
    /// Flow `J = ρ·v̄` (vehicles/step).
    pub flow: f64,
}

impl LaneObservation {
    /// Capture the current state of a lane.
    pub fn capture(lane: &Lane) -> Self {
        LaneObservation {
            time: lane.time(),
            density: lane.density(),
            mean_velocity: lane.average_velocity(),
            flow: lane.flow(),
        }
    }
}

/// One point of the fundamental diagram: the ensemble-averaged flow at a
/// given density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FundamentalPoint {
    /// Density `ρ`.
    pub density: f64,
    /// Ensemble- and time-averaged flow `⟨J⟩`.
    pub mean_flow: f64,
    /// Ensemble- and time-averaged velocity `⟨v̄⟩`.
    pub mean_velocity: f64,
    /// Standard deviation of per-trial flow averages.
    pub flow_std: f64,
    /// Number of independent trials averaged.
    pub trials: usize,
}

/// Generator for the flow-vs-density fundamental diagram (paper Fig. 4:
/// `L = 400`, 500 iterations, ensemble of 20 trials per point).
///
/// ```
/// use cavenet_ca::FundamentalDiagram;
/// # fn main() -> Result<(), cavenet_ca::CaError> {
/// let diagram = FundamentalDiagram::new(400, 0.0)
///     .iterations(200)
///     .trials(3)
///     .discard(50);
/// let points = diagram.sweep(&[0.05, 0.1, 0.2], 42)?;
/// assert_eq!(points.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FundamentalDiagram {
    length: usize,
    p: f64,
    vmax: u32,
    iterations: usize,
    discard: usize,
    trials: usize,
    boundary: Boundary,
}

impl FundamentalDiagram {
    /// New diagram generator for a lane of `length` sites with slow-down
    /// probability `p`, using the paper defaults: 500 iterations, 20 trials,
    /// closed boundary, `v_max = 5`.
    pub fn new(length: usize, p: f64) -> Self {
        FundamentalDiagram {
            length,
            p,
            vmax: crate::DEFAULT_VMAX,
            iterations: 500,
            discard: 100,
            trials: 20,
            boundary: Boundary::Closed,
        }
    }

    /// Number of steps each trial runs (default 500, as in the paper).
    pub fn iterations(mut self, n: usize) -> Self {
        self.iterations = n;
        self
    }

    /// Number of leading samples discarded as transient (default 100).
    pub fn discard(mut self, n: usize) -> Self {
        self.discard = n.min(self.iterations);
        self
    }

    /// Number of independent trials per density (default 20, as in the
    /// paper's ensemble average).
    pub fn trials(mut self, n: usize) -> Self {
        self.trials = n.max(1);
        self
    }

    /// Maximum velocity (default 5).
    pub fn vmax(mut self, v: u32) -> Self {
        self.vmax = v;
        self
    }

    /// Boundary condition (default closed ring).
    pub fn boundary(mut self, b: Boundary) -> Self {
        self.boundary = b;
        self
    }

    /// Measure one fundamental-diagram point at density `rho`.
    ///
    /// # Errors
    ///
    /// Returns [`CaError`] if `rho` or the configured parameters are invalid.
    pub fn point(&self, rho: f64, seed: u64) -> Result<FundamentalPoint, CaError> {
        let params = NasParams::builder()
            .length(self.length)
            .density(rho)
            .vmax(self.vmax)
            .slowdown_probability(self.p)
            .build()?;
        let mut per_trial_flow = Vec::with_capacity(self.trials);
        let mut per_trial_vel = Vec::with_capacity(self.trials);
        for trial in 0..self.trials {
            let trial_seed = seed
                .wrapping_mul(0x0000_0100_0000_01b3)
                .wrapping_add(trial as u64);
            let mut lane = Lane::with_random_placement(params, self.boundary, trial_seed)?;
            let mut flow_acc = 0.0;
            let mut vel_acc = 0.0;
            let mut samples = 0usize;
            for t in 0..self.iterations {
                lane.step();
                if t >= self.discard {
                    flow_acc += lane.flow();
                    vel_acc += lane.average_velocity();
                    samples += 1;
                }
            }
            let n = samples.max(1) as f64;
            per_trial_flow.push(flow_acc / n);
            per_trial_vel.push(vel_acc / n);
        }
        let t = per_trial_flow.len() as f64;
        let mean_flow = per_trial_flow.iter().sum::<f64>() / t;
        let mean_velocity = per_trial_vel.iter().sum::<f64>() / t;
        let var = per_trial_flow
            .iter()
            .map(|f| (f - mean_flow).powi(2))
            .sum::<f64>()
            / t;
        Ok(FundamentalPoint {
            density: params.density(),
            mean_flow,
            mean_velocity,
            flow_std: var.sqrt(),
            trials: self.trials,
        })
    }

    /// Measure a sweep of densities. Seeds for each density are derived from
    /// `seed` deterministically, so the full diagram is reproducible.
    ///
    /// # Errors
    ///
    /// Returns the first [`CaError`] produced by an invalid density.
    pub fn sweep(&self, densities: &[f64], seed: u64) -> Result<Vec<FundamentalPoint>, CaError> {
        densities
            .iter()
            .enumerate()
            .map(|(i, &rho)| self.point(rho, seed.wrapping_add((i as u64) << 32)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_captures_lane_state() {
        let params = NasParams::builder()
            .length(100)
            .density(0.2)
            .build()
            .unwrap();
        let mut lane = Lane::with_uniform_placement(params, Boundary::Closed, 0).unwrap();
        lane.step();
        let obs = LaneObservation::capture(&lane);
        assert_eq!(obs.time, 1);
        assert!((obs.density - 0.2).abs() < 1e-12);
        assert!((obs.flow - obs.density * obs.mean_velocity).abs() < 1e-12);
    }

    #[test]
    fn deterministic_free_flow_point() {
        // ρ = 0.1 < 1/6: flow should be ρ·vmax = 0.5 exactly for p = 0.
        let d = FundamentalDiagram::new(400, 0.0)
            .iterations(300)
            .discard(100)
            .trials(3);
        let pt = d.point(0.1, 1).unwrap();
        assert!(
            (pt.mean_flow - 0.5).abs() < 0.02,
            "free flow J should be ≈0.5, got {}",
            pt.mean_flow
        );
        assert!(pt.flow_std < 0.05);
    }

    #[test]
    fn deterministic_jammed_point() {
        // ρ = 0.5 > 1/6: deterministic stationary flow is 1 − ρ = 0.5.
        let d = FundamentalDiagram::new(400, 0.0)
            .iterations(2500)
            .discard(2000)
            .trials(3);
        let pt = d.point(0.5, 1).unwrap();
        assert!(
            (pt.mean_flow - 0.5).abs() < 0.05,
            "jammed flow should be ≈0.5, got {}",
            pt.mean_flow
        );
    }

    #[test]
    fn stochastic_flow_below_deterministic() {
        let det = FundamentalDiagram::new(400, 0.0)
            .iterations(400)
            .discard(200)
            .trials(3);
        let sto = FundamentalDiagram::new(400, 0.5)
            .iterations(400)
            .discard(200)
            .trials(3);
        let jd = det.point(0.15, 7).unwrap().mean_flow;
        let js = sto.point(0.15, 7).unwrap().mean_flow;
        assert!(
            js < jd,
            "randomization must reduce flow: p=0.5 gave {js}, p=0 gave {jd}"
        );
    }

    #[test]
    fn sweep_is_deterministic_given_seed() {
        let d = FundamentalDiagram::new(200, 0.3)
            .iterations(100)
            .discard(20)
            .trials(2);
        let a = d.sweep(&[0.1, 0.3], 99).unwrap();
        let b = d.sweep(&[0.1, 0.3], 99).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_rejects_invalid_density() {
        let d = FundamentalDiagram::new(200, 0.0);
        assert!(d.sweep(&[0.1, 2.0], 0).is_err());
    }

    #[test]
    fn fundamental_diagram_peaks_near_critical_density_for_p0() {
        // For p = 0 the flow-density curve rises with slope vmax until
        // ρ_c = 1/(vmax+1) ≈ 0.167 and falls as 1 − ρ afterwards.
        let d = FundamentalDiagram::new(240, 0.0)
            .iterations(1500)
            .discard(1000)
            .trials(2);
        let low = d.point(0.05, 3).unwrap().mean_flow;
        let crit = d.point(1.0 / 6.0, 3).unwrap().mean_flow;
        let high = d.point(0.45, 3).unwrap().mean_flow;
        assert!(crit > low, "peak {crit} must exceed free-flow point {low}");
        assert!(crit > high, "peak {crit} must exceed jammed point {high}");
    }
}
