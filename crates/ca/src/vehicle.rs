//! The per-vehicle data structure (`VE_i` in the paper, §III-C).

use std::fmt;

use cavenet_rng::wire::{WireError, WireReader, WireWriter};

/// Unique, stable identifier of a vehicle within a lane or road.
///
/// The paper uses the relative euclidean position `X_i` as the identifier for
/// trace generation; because positions change every step we instead assign a
/// dense integer id at placement time and keep it stable for the vehicle's
/// lifetime, which serves the same purpose (joining CA state to mobility
/// traces and to network nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VehicleId(pub u32);

impl fmt::Display for VehicleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "veh{}", self.0)
    }
}

impl From<u32> for VehicleId {
    fn from(raw: u32) -> Self {
        VehicleId(raw)
    }
}

/// State of one vehicle: its site index on the lane, current velocity, the
/// gap ahead measured at the last step, and wrap bookkeeping for trace
/// generation (§III-C: "for closed boundaries … we check if a shift has taken
/// place. This information will serve to properly generate the trace").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vehicle {
    id: VehicleId,
    position: usize,
    velocity: u32,
    gap: u32,
    laps: u64,
    wrapped_last_step: bool,
}

impl Vehicle {
    /// Create a vehicle at `position` with initial `velocity`.
    pub fn new(id: VehicleId, position: usize, velocity: u32) -> Self {
        Vehicle {
            id,
            position,
            velocity,
            gap: 0,
            laps: 0,
            wrapped_last_step: false,
        }
    }

    /// Stable identifier.
    pub fn id(&self) -> VehicleId {
        self.id
    }

    /// Current site index on the lane, in `[0, L)`.
    pub fn position(&self) -> usize {
        self.position
    }

    /// Current velocity in cells per step.
    pub fn velocity(&self) -> u32 {
        self.velocity
    }

    /// Gap (empty sites) to the vehicle ahead, as computed at the last update.
    pub fn gap(&self) -> u32 {
        self.gap
    }

    /// Number of times this vehicle has wrapped around a closed lane (or been
    /// recycled on a `Recycling` lane).
    pub fn laps(&self) -> u64 {
        self.laps
    }

    /// Whether the vehicle wrapped/teleported during the most recent step.
    ///
    /// Mobility-trace generators must break the trajectory here instead of
    /// interpolating a huge backwards jump.
    pub fn wrapped_last_step(&self) -> bool {
        self.wrapped_last_step
    }

    /// Total distance travelled in cells, including completed laps on a ring
    /// of `lane_length` sites (position monotone "unrolled" coordinate).
    pub fn odometer_cells(&self, lane_length: usize) -> u64 {
        self.laps * lane_length as u64 + self.position as u64
    }

    pub(crate) fn set_velocity(&mut self, v: u32) {
        self.velocity = v;
    }

    pub(crate) fn set_gap(&mut self, gap: u32) {
        self.gap = gap;
    }

    pub(crate) fn advance_to(&mut self, position: usize, wrapped: bool) {
        self.position = position;
        self.wrapped_last_step = wrapped;
        if wrapped {
            self.laps += 1;
        }
    }

    /// Serialize the complete vehicle state (checkpoint snapshots).
    pub(crate) fn capture(&self, w: &mut WireWriter) {
        w.put_u32(self.id.0);
        w.put_usize(self.position);
        w.put_u32(self.velocity);
        w.put_u32(self.gap);
        w.put_u64(self.laps);
        w.put_bool(self.wrapped_last_step);
    }

    /// Rebuild a vehicle from a [`Vehicle::capture`] stream.
    pub(crate) fn restore(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Vehicle {
            id: VehicleId(r.get_u32()?),
            position: r.get_usize()?,
            velocity: r.get_u32()?,
            gap: r.get_u32()?,
            laps: r.get_u64()?,
            wrapped_last_step: r.get_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_vehicle_state() {
        let v = Vehicle::new(VehicleId(3), 17, 2);
        assert_eq!(v.id(), VehicleId(3));
        assert_eq!(v.position(), 17);
        assert_eq!(v.velocity(), 2);
        assert_eq!(v.gap(), 0);
        assert_eq!(v.laps(), 0);
        assert!(!v.wrapped_last_step());
    }

    #[test]
    fn advance_tracks_wraps() {
        let mut v = Vehicle::new(VehicleId(0), 398, 5);
        v.advance_to(3, true);
        assert_eq!(v.position(), 3);
        assert_eq!(v.laps(), 1);
        assert!(v.wrapped_last_step());
        v.advance_to(8, false);
        assert!(!v.wrapped_last_step());
        assert_eq!(v.laps(), 1);
    }

    #[test]
    fn odometer_unrolls_laps() {
        let mut v = Vehicle::new(VehicleId(0), 10, 0);
        assert_eq!(v.odometer_cells(400), 10);
        v.advance_to(2, true);
        assert_eq!(v.odometer_cells(400), 402);
    }

    #[test]
    fn id_display_and_conversion() {
        let id: VehicleId = 7u32.into();
        assert_eq!(id.to_string(), "veh7");
    }
}
