//! Jam (cluster) statistics of a lane configuration.
//!
//! The space-time plots of Fig. 5 distinguish traffic regimes by their jam
//! structure: isolated short-lived clusters in the laminar phase,
//! system-spanning interconnected jams in the congested phase. This module
//! extracts that structure numerically: maximal runs of stopped (or
//! slow-moving) vehicles, their size distribution, and per-run summary
//! statistics that make the phase transition measurable.

use crate::Lane;

/// A maximal cluster of consecutive jammed vehicles on the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JamCluster {
    /// Site index of the rearmost vehicle in the cluster.
    pub start_site: usize,
    /// Number of vehicles in the cluster.
    pub vehicles: usize,
}

/// Jam statistics of a single lane configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JamSnapshot {
    clusters: Vec<JamCluster>,
    vehicle_count: usize,
}

impl JamSnapshot {
    /// Identify jams on the lane: maximal chains of vehicles with velocity
    /// `≤ v_jam` whose bumper gaps are `≤ gap_max` cells.
    ///
    /// The paper's visual convention (stopped cars in the space-time plot)
    /// corresponds to `v_jam = 0`; `gap_max = 1` groups vehicles that stand
    /// (nearly) bumper to bumper.
    pub fn capture(lane: &Lane, v_jam: u32, gap_max: u32) -> Self {
        let vehicles = lane.vehicles();
        let n = vehicles.len();
        if n == 0 {
            return JamSnapshot {
                clusters: Vec::new(),
                vehicle_count: 0,
            };
        }
        let slow: Vec<bool> = vehicles.iter().map(|v| v.velocity() <= v_jam).collect();
        // chained[i] == true: vehicle i and its successor are close enough
        // to belong to one cluster (gap measured at the last update).
        let chained: Vec<bool> = vehicles.iter().map(|v| v.gap() <= gap_max).collect();

        // Find maximal runs of slow vehicles connected by `chained`,
        // treating the ring circularly.
        let in_cluster = |i: usize| slow[i];
        let linked = |i: usize| chained[i] && slow[i] && slow[(i + 1) % n];
        let mut clusters = Vec::new();
        if let Some(first_break) = (0..n).find(|&i| !linked(i)) {
            // Start scanning right after the break.
            let start = first_break + 1;
            let mut i = 0;
            while i < n {
                let idx = (start + i) % n;
                if !in_cluster(idx) {
                    i += 1;
                    continue;
                }
                // Extend the run while linked.
                let mut len = 1;
                while i + len < n
                    && linked((start + i + len - 1) % n)
                    && in_cluster((start + i + len) % n)
                {
                    len += 1;
                }
                clusters.push(JamCluster {
                    start_site: vehicles[idx].position(),
                    vehicles: len,
                });
                i += len;
            }
        } else {
            // Every vehicle links to its successor: one ring-spanning jam.
            clusters.push(JamCluster {
                start_site: vehicles[0].position(),
                vehicles: n,
            });
        }
        JamSnapshot {
            clusters,
            vehicle_count: n,
        }
    }

    /// The identified clusters.
    pub fn clusters(&self) -> &[JamCluster] {
        &self.clusters
    }

    /// Number of distinct jams.
    pub fn count(&self) -> usize {
        self.clusters.len()
    }

    /// Vehicles in the largest jam (0 when free-flowing).
    pub fn largest(&self) -> usize {
        self.clusters.iter().map(|c| c.vehicles).max().unwrap_or(0)
    }

    /// Fraction of all vehicles caught in some jam.
    pub fn jammed_fraction(&self) -> f64 {
        if self.vehicle_count == 0 {
            return 0.0;
        }
        let jammed: usize = self.clusters.iter().map(|c| c.vehicles).sum();
        jammed as f64 / self.vehicle_count as f64
    }

    /// Mean jam size (0 when there are no jams).
    pub fn mean_size(&self) -> f64 {
        if self.clusters.is_empty() {
            return 0.0;
        }
        self.clusters.iter().map(|c| c.vehicles).sum::<usize>() as f64 / self.clusters.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Boundary, NasParams};

    fn lane_from(positions: &[usize], velocities: &[u32], l: usize) -> Lane {
        let params = NasParams::builder()
            .length(l)
            .vehicle_count(positions.len())
            .build()
            .unwrap();
        Lane::from_positions(params, Boundary::Closed, positions, velocities, 0).unwrap()
    }

    #[test]
    fn empty_lane_no_jams() {
        let params = NasParams::builder()
            .length(10)
            .vehicle_count(1)
            .build()
            .unwrap();
        let lane = Lane::from_positions(params, Boundary::Closed, &[3], &[5], 0).unwrap();
        let snap = JamSnapshot::capture(&lane, 0, 1);
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.largest(), 0);
        assert_eq!(snap.jammed_fraction(), 0.0);
        assert_eq!(snap.mean_size(), 0.0);
    }

    #[test]
    fn single_compact_jam() {
        // Three stopped cars bumper to bumper, one free cruiser.
        let lane = lane_from(&[2, 3, 4, 10], &[0, 0, 0, 5], 20);
        let snap = JamSnapshot::capture(&lane, 0, 1);
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.largest(), 3);
        assert!((snap.jammed_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(snap.clusters()[0].vehicles, 3);
    }

    #[test]
    fn two_separate_jams() {
        let lane = lane_from(&[0, 1, 8, 9, 15], &[0, 0, 0, 0, 4], 20);
        let snap = JamSnapshot::capture(&lane, 0, 1);
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.largest(), 2);
        assert!((snap.mean_size() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn wrap_around_jam_is_one_cluster() {
        // Jam straddling the seam: vehicles at 18, 19, 0, 1 on a 20-ring.
        let lane = lane_from(&[0, 1, 18, 19], &[0, 0, 0, 0], 20);
        let snap = JamSnapshot::capture(&lane, 0, 1);
        assert_eq!(
            snap.count(),
            1,
            "seam jam must not split: {:?}",
            snap.clusters()
        );
        assert_eq!(snap.largest(), 4);
    }

    #[test]
    fn fully_jammed_ring() {
        let positions: Vec<usize> = (0..6).collect();
        let lane = lane_from(&positions, &[0; 6], 6);
        let snap = JamSnapshot::capture(&lane, 0, 1);
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.largest(), 6);
        assert!((snap.jammed_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn velocity_threshold_widens_definition() {
        // Cars crawling at v = 1: not jams at v_jam = 0, jams at v_jam = 1.
        let lane = lane_from(&[2, 4], &[1, 1], 20);
        let strict = JamSnapshot::capture(&lane, 0, 1);
        assert_eq!(strict.count(), 0);
        let loose = JamSnapshot::capture(&lane, 1, 1);
        assert!(loose.count() >= 1);
    }

    #[test]
    fn congested_lane_has_larger_jams_than_laminar() {
        let mk = |rho: f64| {
            let params = NasParams::builder()
                .length(200)
                .density(rho)
                .slowdown_probability(0.3)
                .build()
                .unwrap();
            let mut lane = Lane::with_random_placement(params, Boundary::Closed, 5).unwrap();
            for _ in 0..300 {
                lane.step();
            }
            // Average over a window for stability.
            let mut largest = 0.0;
            for _ in 0..50 {
                lane.step();
                largest += JamSnapshot::capture(&lane, 0, 1).largest() as f64;
            }
            largest / 50.0
        };
        let laminar = mk(0.06);
        let congested = mk(0.5);
        assert!(
            congested > laminar + 1.0,
            "congested jams ({congested:.1}) should dwarf laminar ones ({laminar:.1})"
        );
    }
}
