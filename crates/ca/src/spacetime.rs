//! Space-time diagrams (paper Fig. 5): the evolution of every site of a lane
//! over a window of steps, used to visualize laminar flow and backwards-
//! travelling jam waves.

use crate::Lane;

/// State of one site at one time in a space-time diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceTimeCell {
    /// No vehicle on the site.
    Empty,
    /// A vehicle with the given velocity (cells/step).
    Occupied(u32),
}

impl SpaceTimeCell {
    /// `true` if a vehicle occupies the site.
    pub fn is_occupied(&self) -> bool {
        matches!(self, SpaceTimeCell::Occupied(_))
    }

    /// `true` if a vehicle occupies the site with velocity 0 (part of a jam).
    pub fn is_jammed(&self) -> bool {
        matches!(self, SpaceTimeCell::Occupied(0))
    }
}

/// A recorded space-time diagram: `rows` snapshots of a lane of `width`
/// sites, one row per time step.
///
/// ```
/// use cavenet_ca::{Lane, NasParams, Boundary, SpaceTimeDiagram};
/// # fn main() -> Result<(), cavenet_ca::CaError> {
/// let params = NasParams::builder().length(60).density(0.3)
///     .slowdown_probability(0.3).build()?;
/// let mut lane = Lane::with_random_placement(params, Boundary::Closed, 1)?;
/// let diagram = SpaceTimeDiagram::record(&mut lane, 40);
/// println!("{}", diagram.render_ascii());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SpaceTimeDiagram {
    width: usize,
    rows: Vec<Vec<SpaceTimeCell>>,
}

impl SpaceTimeDiagram {
    /// Step `lane` forward `steps` times, recording the configuration after
    /// each step (plus the initial configuration as row 0).
    pub fn record(lane: &mut Lane, steps: usize) -> Self {
        let width = lane.params().length();
        let mut rows = Vec::with_capacity(steps + 1);
        rows.push(Self::snapshot(lane));
        for _ in 0..steps {
            lane.step();
            rows.push(Self::snapshot(lane));
        }
        SpaceTimeDiagram { width, rows }
    }

    fn snapshot(lane: &Lane) -> Vec<SpaceTimeCell> {
        lane.occupancy_row()
            .into_iter()
            .map(|x| {
                if x < 0 {
                    SpaceTimeCell::Empty
                } else {
                    SpaceTimeCell::Occupied(x as u32)
                }
            })
            .collect()
    }

    /// Number of sites per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of recorded rows (steps + 1).
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Access one recorded row.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.rows()`.
    pub fn row(&self, t: usize) -> &[SpaceTimeCell] {
        &self.rows[t]
    }

    /// Fraction of occupied sites that are jammed (velocity 0) in row `t`.
    /// Returns 0 for an empty row.
    pub fn jam_fraction(&self, t: usize) -> f64 {
        let row = &self.rows[t];
        let occupied = row.iter().filter(|c| c.is_occupied()).count();
        if occupied == 0 {
            return 0.0;
        }
        let jammed = row.iter().filter(|c| c.is_jammed()).count();
        jammed as f64 / occupied as f64
    }

    /// Mean jam fraction over all recorded rows — a scalar summary that
    /// distinguishes the laminar regime (≈0) from the congested regime
    /// (substantially positive), the qualitative content of Fig. 5.
    pub fn mean_jam_fraction(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        (0..self.rows.len())
            .map(|t| self.jam_fraction(t))
            .sum::<f64>()
            / self.rows.len() as f64
    }

    /// Estimate the drift of the centre of mass of jammed (v = 0) vehicles in
    /// sites per step, by comparing the first and last rows that contain
    /// jammed vehicles. Negative values mean the jam travels *against* the
    /// direction of traffic — the signature jam-wave behaviour of Fig. 5-b/d.
    /// Returns `None` if fewer than two rows contain jams.
    pub fn jam_wave_velocity(&self) -> Option<f64> {
        let centroid = |row: &[SpaceTimeCell]| -> Option<f64> {
            let jams: Vec<usize> = row
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_jammed())
                .map(|(i, _)| i)
                .collect();
            if jams.is_empty() {
                None
            } else {
                Some(jams.iter().sum::<usize>() as f64 / jams.len() as f64)
            }
        };
        let mut first: Option<(usize, f64)> = None;
        let mut last: Option<(usize, f64)> = None;
        for (t, row) in self.rows.iter().enumerate() {
            if let Some(c) = centroid(row) {
                if first.is_none() {
                    first = Some((t, c));
                }
                last = Some((t, c));
            }
        }
        match (first, last) {
            (Some((t0, c0)), Some((t1, c1))) if t1 > t0 => {
                // On a ring the centroid can wrap; use the minimal circular
                // displacement.
                let w = self.width as f64;
                let mut d = c1 - c0;
                if d > w / 2.0 {
                    d -= w;
                } else if d < -w / 2.0 {
                    d += w;
                }
                Some(d / (t1 - t0) as f64)
            }
            _ => None,
        }
    }

    /// Render the diagram as ASCII art: one text row per time step, `.` for
    /// empty sites, the velocity digit for moving vehicles, `#` for stopped
    /// vehicles. Space runs left→right, time top→bottom (as in Fig. 5).
    pub fn render_ascii(&self) -> String {
        let mut out = String::with_capacity(self.rows.len() * (self.width + 1));
        for row in &self.rows {
            for cell in row {
                let ch = match cell {
                    SpaceTimeCell::Empty => '.',
                    SpaceTimeCell::Occupied(0) => '#',
                    SpaceTimeCell::Occupied(v) => char::from_digit((*v).min(9), 10).unwrap_or('9'),
                };
                out.push(ch);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Boundary, NasParams};

    fn lane(l: usize, rho: f64, p: f64, seed: u64) -> Lane {
        let params = NasParams::builder()
            .length(l)
            .density(rho)
            .slowdown_probability(p)
            .build()
            .unwrap();
        Lane::with_random_placement(params, Boundary::Closed, seed).unwrap()
    }

    #[test]
    fn record_shape() {
        let mut l = lane(50, 0.2, 0.0, 1);
        let d = SpaceTimeDiagram::record(&mut l, 30);
        assert_eq!(d.rows(), 31);
        assert_eq!(d.width(), 50);
        assert_eq!(d.row(0).len(), 50);
    }

    #[test]
    fn occupancy_count_is_conserved_in_rows() {
        let mut l = lane(80, 0.25, 0.3, 2);
        let d = SpaceTimeDiagram::record(&mut l, 40);
        for t in 0..d.rows() {
            let occ = d.row(t).iter().filter(|c| c.is_occupied()).count();
            assert_eq!(occ, 20);
        }
    }

    #[test]
    fn laminar_regime_has_low_jam_fraction() {
        // ρ = 0.0625, p = 0.3 — the paper's laminar case (Fig. 5-a).
        let mut l = lane(800, 0.0625, 0.3, 3);
        for _ in 0..200 {
            l.step();
        }
        let d = SpaceTimeDiagram::record(&mut l, 100);
        assert!(
            d.mean_jam_fraction() < 0.15,
            "laminar traffic should have few stopped cars, got {}",
            d.mean_jam_fraction()
        );
    }

    #[test]
    fn congested_regime_has_high_jam_fraction() {
        // ρ = 0.5, p = 0.3 — the paper's jammed case (Fig. 5-b).
        let mut l = lane(400, 0.5, 0.3, 3);
        for _ in 0..200 {
            l.step();
        }
        let d = SpaceTimeDiagram::record(&mut l, 100);
        assert!(
            d.mean_jam_fraction() > 0.3,
            "congested traffic should have many stopped cars, got {}",
            d.mean_jam_fraction()
        );
    }

    #[test]
    fn jam_wave_travels_backwards() {
        // Dense deterministic traffic: jams drift opposite to movement.
        let mut l = lane(400, 0.5, 0.3, 5);
        for _ in 0..300 {
            l.step();
        }
        let d = SpaceTimeDiagram::record(&mut l, 60);
        if let Some(v) = d.jam_wave_velocity() {
            assert!(v < 0.5, "jam wave should not travel forward fast, got {v}");
        }
    }

    #[test]
    fn ascii_render_dimensions() {
        let mut l = lane(40, 0.2, 0.0, 1);
        let d = SpaceTimeDiagram::record(&mut l, 10);
        let text = d.render_ascii();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 11);
        assert!(lines.iter().all(|line| line.chars().count() == 40));
    }

    #[test]
    fn ascii_render_symbols() {
        let params = NasParams::builder()
            .length(10)
            .vehicle_count(2)
            .build()
            .unwrap();
        let l = Lane::from_positions(params, Boundary::Closed, &[1, 5], &[0, 3], 0).unwrap();
        let mut l2 = l;
        let d = SpaceTimeDiagram::record(&mut l2, 0);
        let line = d.render_ascii();
        assert!(line.starts_with(".#...3"));
    }
}
