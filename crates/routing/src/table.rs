//! A sequence-numbered distance-vector routing table, shared by the
//! reactive protocols (AODV and DYMO).

use std::collections::HashMap;

use cavenet_net::snapshot::{read_node_id, read_time, write_node_id, write_time};
use cavenet_net::{NodeId, SimTime, WireError, WireReader, WireWriter};

/// One route: where to send packets for a destination, how far it is, how
/// fresh the information is, and until when it is valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Neighbour to forward through.
    pub next_hop: NodeId,
    /// Distance in hops.
    pub hop_count: u32,
    /// Destination sequence number (freshness).
    pub seqno: u32,
    /// Route expiry time; stale routes are invalid.
    pub expires: SimTime,
    /// Explicitly invalidated (e.g. by a RERR) but retained for its
    /// sequence number.
    pub valid: bool,
}

impl RouteEntry {
    /// Whether the route can be used at time `now`.
    pub fn is_usable(&self, now: SimTime) -> bool {
        self.valid && self.expires > now
    }
}

/// The routing table: destination → [`RouteEntry`].
///
/// Update semantics follow AODV's rules: a route is replaced when the new
/// information has a strictly newer sequence number, or the same sequence
/// number with a shorter hop count, or when the existing entry is unusable.
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    routes: HashMap<NodeId, RouteEntry>,
}

impl RouteTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries (valid or not).
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The entry for `dst`, if any (possibly invalid/expired).
    pub fn get(&self, dst: NodeId) -> Option<&RouteEntry> {
        self.routes.get(&dst)
    }

    /// The usable route for `dst` at time `now`.
    pub fn lookup(&self, dst: NodeId, now: SimTime) -> Option<&RouteEntry> {
        self.routes.get(&dst).filter(|r| r.is_usable(now))
    }

    /// Offer a new route; installs it if it is fresher, shorter at equal
    /// freshness, or replaces an unusable entry. Returns `true` if
    /// installed.
    pub fn offer(&mut self, dst: NodeId, entry: RouteEntry, now: SimTime) -> bool {
        match self.routes.get(&dst) {
            Some(old) if old.is_usable(now) => {
                let newer = seq_newer(entry.seqno, old.seqno);
                let same_but_shorter = entry.seqno == old.seqno && entry.hop_count < old.hop_count;
                if newer || same_but_shorter {
                    self.routes.insert(dst, entry);
                    true
                } else {
                    false
                }
            }
            _ => {
                self.routes.insert(dst, entry);
                true
            }
        }
    }

    /// Extend the lifetime of a usable route (route kept alive by traffic).
    pub fn refresh(&mut self, dst: NodeId, until: SimTime) {
        if let Some(r) = self.routes.get_mut(&dst) {
            if r.valid && r.expires < until {
                r.expires = until;
            }
        }
    }

    /// Invalidate the route to `dst`, bumping its sequence number so stale
    /// information cannot resurrect it. Returns the invalidated sequence
    /// number if a valid entry existed.
    pub fn invalidate(&mut self, dst: NodeId) -> Option<u32> {
        let r = self.routes.get_mut(&dst)?;
        if !r.valid {
            return None;
        }
        r.valid = false;
        r.seqno = r.seqno.wrapping_add(1);
        Some(r.seqno)
    }

    /// Invalidate every route whose next hop is `neighbour`; returns the
    /// affected `(destination, bumped seqno)` pairs — the payload of a RERR.
    pub fn invalidate_via(&mut self, neighbour: NodeId) -> Vec<(NodeId, u32)> {
        let mut out = Vec::new();
        for (&dst, r) in self.routes.iter_mut() {
            if r.valid && r.next_hop == neighbour {
                r.valid = false;
                r.seqno = r.seqno.wrapping_add(1);
                out.push((dst, r.seqno));
            }
        }
        out.sort_by_key(|&(d, _)| d);
        out
    }

    /// Drop entries that expired more than `grace` ago (bookkeeping sweep).
    pub fn purge(&mut self, now: SimTime, grace: std::time::Duration) {
        self.routes
            .retain(|_, r| r.expires.checked_add(grace).is_none_or(|t| t > now));
    }

    /// Iterate over all `(destination, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&NodeId, &RouteEntry)> {
        self.routes.iter()
    }

    /// Serialize every entry in destination order (checkpoint snapshots
    /// must be independent of `HashMap` iteration order).
    pub fn capture(&self, w: &mut WireWriter) {
        let mut dsts: Vec<NodeId> = self.routes.keys().copied().collect();
        dsts.sort_by_key(|d| d.0);
        w.put_usize(dsts.len());
        for dst in dsts {
            let r = &self.routes[&dst];
            write_node_id(w, dst);
            write_node_id(w, r.next_hop);
            w.put_u32(r.hop_count);
            w.put_u32(r.seqno);
            write_time(w, r.expires);
            w.put_bool(r.valid);
        }
    }

    /// Rebuild the table from a [`RouteTable::capture`] stream.
    ///
    /// # Errors
    ///
    /// [`WireError`] on a truncated or malformed stream.
    pub fn restore(&mut self, r: &mut WireReader<'_>) -> Result<(), WireError> {
        self.routes.clear();
        let n = r.get_usize()?;
        for _ in 0..n {
            let dst = read_node_id(r)?;
            let entry = RouteEntry {
                next_hop: read_node_id(r)?,
                hop_count: r.get_u32()?,
                seqno: r.get_u32()?,
                expires: read_time(r)?,
                valid: r.get_bool()?,
            };
            self.routes.insert(dst, entry);
        }
        Ok(())
    }
}

/// AODV-style circular sequence-number comparison (RFC 3561 §6.1).
pub(crate) fn seq_newer(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn entry(nh: u32, hops: u32, seq: u32, expires_s: u64) -> RouteEntry {
        RouteEntry {
            next_hop: NodeId(nh),
            hop_count: hops,
            seqno: seq,
            expires: SimTime::from_secs(expires_s),
            valid: true,
        }
    }

    #[test]
    fn lookup_usable_only() {
        let mut t = RouteTable::new();
        let now = SimTime::from_secs(1);
        t.offer(NodeId(5), entry(2, 3, 10, 5), now);
        assert!(t.lookup(NodeId(5), now).is_some());
        assert!(
            t.lookup(NodeId(5), SimTime::from_secs(6)).is_none(),
            "expired"
        );
        assert!(t.lookup(NodeId(9), now).is_none(), "unknown");
    }

    #[test]
    fn fresher_seq_wins() {
        let mut t = RouteTable::new();
        let now = SimTime::ZERO;
        assert!(t.offer(NodeId(1), entry(2, 5, 10, 9), now));
        assert!(
            !t.offer(NodeId(1), entry(3, 1, 9, 9), now),
            "older seq rejected"
        );
        assert!(
            t.offer(NodeId(1), entry(3, 9, 11, 9), now),
            "newer seq accepted"
        );
        assert_eq!(t.get(NodeId(1)).unwrap().next_hop, NodeId(3));
    }

    #[test]
    fn equal_seq_shorter_wins() {
        let mut t = RouteTable::new();
        let now = SimTime::ZERO;
        t.offer(NodeId(1), entry(2, 5, 10, 9), now);
        assert!(
            !t.offer(NodeId(1), entry(3, 5, 10, 9), now),
            "same length rejected"
        );
        assert!(
            t.offer(NodeId(1), entry(3, 2, 10, 9), now),
            "shorter accepted"
        );
    }

    #[test]
    fn unusable_entry_always_replaced() {
        let mut t = RouteTable::new();
        let now = SimTime::from_secs(10);
        t.offer(NodeId(1), entry(2, 5, 100, 5), SimTime::ZERO); // expired by `now`
        assert!(
            t.offer(NodeId(1), entry(3, 9, 1, 20), now),
            "expired replaced"
        );
    }

    #[test]
    fn invalidate_bumps_seq() {
        let mut t = RouteTable::new();
        t.offer(NodeId(1), entry(2, 5, 10, 9), SimTime::ZERO);
        assert_eq!(t.invalidate(NodeId(1)), Some(11));
        assert!(t.lookup(NodeId(1), SimTime::ZERO).is_none());
        assert_eq!(t.invalidate(NodeId(1)), None, "already invalid");
    }

    #[test]
    fn invalidate_via_collects_rerr_payload() {
        let mut t = RouteTable::new();
        t.offer(NodeId(1), entry(9, 2, 5, 99), SimTime::ZERO);
        t.offer(NodeId(2), entry(9, 3, 6, 99), SimTime::ZERO);
        t.offer(NodeId(3), entry(4, 1, 7, 99), SimTime::ZERO);
        let broken = t.invalidate_via(NodeId(9));
        assert_eq!(broken, vec![(NodeId(1), 6), (NodeId(2), 7)]);
        assert!(
            t.lookup(NodeId(3), SimTime::ZERO).is_some(),
            "unrelated survives"
        );
    }

    #[test]
    fn refresh_extends_lifetime() {
        let mut t = RouteTable::new();
        t.offer(NodeId(1), entry(2, 1, 1, 5), SimTime::ZERO);
        t.refresh(NodeId(1), SimTime::from_secs(20));
        assert!(t.lookup(NodeId(1), SimTime::from_secs(10)).is_some());
        // Refresh never shortens.
        t.refresh(NodeId(1), SimTime::from_secs(1));
        assert!(t.lookup(NodeId(1), SimTime::from_secs(10)).is_some());
    }

    #[test]
    fn purge_drops_long_dead() {
        let mut t = RouteTable::new();
        t.offer(NodeId(1), entry(2, 1, 1, 5), SimTime::ZERO);
        t.purge(SimTime::from_secs(100), Duration::from_secs(10));
        assert!(t.is_empty());
    }

    #[test]
    fn circular_seq_comparison() {
        assert!(seq_newer(2, 1));
        assert!(!seq_newer(1, 2));
        assert!(!seq_newer(5, 5));
        // Wrap-around: 1 is newer than u32::MAX.
        assert!(seq_newer(1, u32::MAX));
        assert!(!seq_newer(u32::MAX, 1));
    }
}
