//! Dynamic MANET On-demand routing (DYMO, draft-ietf-manet-dymo-14).
//!
//! DYMO builds on AODV's on-demand discovery but adds **path accumulation**
//! (paper §III-B-3): route messages carry the addresses and sequence numbers
//! of every node they traversed, so "besides route information about a
//! requested target, a node will also receive information about all
//! intermediate nodes of a newly discovered path". The other difference the
//! paper highlights: link failures are disseminated by *flooding* RERRs to
//! all nodes in range, which in turn re-flood if routes they know become
//! invalid.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use cavenet_net::snapshot::{
    read_node_id, read_packet, read_time, write_node_id, write_packet, write_time,
};
use cavenet_net::{
    ControlBlob, ControlCodec, DataOnlyCodec, DropReason, NodeApi, NodeId, Packet, RouteEventKind,
    RoutingProtocol, RoutingTelemetry, SimTime, WireError, WireReader, WireWriter,
};

use crate::table::{seq_newer, RouteEntry, RouteTable};

/// DYMO tunables (draft defaults, HELLO interval per paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DymoConfig {
    /// HELLO broadcast interval (Table 1: 1 s).
    pub hello_interval: Duration,
    /// Missed HELLOs before a neighbour is declared lost.
    pub allowed_hello_loss: u32,
    /// Route lifetime granted on installation/use (ROUTE_TIMEOUT).
    pub route_timeout: Duration,
    /// Wait per discovery attempt (RREQ_WAIT_TIME).
    pub discovery_timeout: Duration,
    /// Discovery attempts before giving up (RREQ_TRIES).
    pub max_discovery_retries: u32,
    /// RREQ flood TTL (MSG_HOPLIMIT).
    pub hop_limit: u8,
    /// How long buffered data waits for a route.
    pub max_queue_time: Duration,
}

impl Default for DymoConfig {
    fn default() -> Self {
        DymoConfig {
            hello_interval: Duration::from_secs(1),
            allowed_hello_loss: 2,
            route_timeout: Duration::from_secs(5),
            discovery_timeout: Duration::from_secs(1),
            max_discovery_retries: 3,
            hop_limit: 20,
            max_queue_time: Duration::from_secs(10),
        }
    }
}

/// An address block entry accumulated along a route message's path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PathNode {
    addr: NodeId,
    seqno: u32,
}

/// DYMO Routing Message — RREQ and RREP share the structure (the draft's
/// generic RM with a target and an accumulated address block). Wire size ≈
/// 8 + 8·path bytes.
#[derive(Debug, Clone)]
struct RouteMessage {
    is_reply: bool,
    /// Node the message tries to reach (RREQ) or inform (RREP target =
    /// RREQ's originator).
    target: NodeId,
    /// Known target sequence number, for freshness comparison at
    /// intermediates.
    target_seq: Option<u32>,
    /// Discovery id (originator-scoped) for duplicate suppression.
    msg_id: u32,
    /// Accumulated path: front is the originator, back is the latest hop.
    path: Vec<PathNode>,
}

impl RouteMessage {
    fn origin(&self) -> NodeId {
        self.path.first().expect("path never empty").addr
    }

    fn wire_size(&self) -> u32 {
        8 + 8 * self.path.len() as u32
    }
}

/// Route Error, flooded (wire size ≈ 4 + 8·n).
#[derive(Debug, Clone)]
struct Rerr {
    unreachable: Vec<(NodeId, u32)>,
}

/// HELLO beacon (wire size ≈ 8).
#[derive(Debug, Clone)]
struct Hello {
    #[allow(dead_code)]
    seq: u32,
}

const HELLO_SIZE: u32 = 8;
const TOKEN_HELLO: u64 = 1;
const TOKEN_TICK: u64 = 2;
const TICK: Duration = Duration::from_millis(250);

#[derive(Debug)]
struct PendingDiscovery {
    retries: u32,
    deadline: SimTime,
    queued: VecDeque<(Packet, SimTime)>,
}

/// The DYMO routing protocol state for one node.
#[derive(Debug)]
pub struct Dymo {
    config: DymoConfig,
    table: RouteTable,
    seqno: u32,
    msg_id: u32,
    /// Duplicate cache: (origin, msg_id) → expiry.
    seen: HashMap<(NodeId, u32), SimTime>,
    neighbours: HashMap<NodeId, SimTime>,
    pending: HashMap<NodeId, PendingDiscovery>,
    /// Lifetime discovery counters reported through
    /// [`RoutingProtocol::telemetry`]; purely observational.
    discoveries_started: u64,
    discovery_retries: u64,
    discoveries_succeeded: u64,
    discoveries_failed: u64,
}

impl Default for Dymo {
    fn default() -> Self {
        Self::new()
    }
}

impl Dymo {
    /// DYMO with default configuration.
    pub fn new() -> Self {
        Self::with_config(DymoConfig::default())
    }

    /// DYMO with explicit configuration.
    pub fn with_config(config: DymoConfig) -> Self {
        Dymo {
            config,
            table: RouteTable::new(),
            seqno: 0,
            msg_id: 0,
            seen: HashMap::new(),
            neighbours: HashMap::new(),
            pending: HashMap::new(),
            discoveries_started: 0,
            discovery_retries: 0,
            discoveries_succeeded: 0,
            discoveries_failed: 0,
        }
    }

    /// Read access to the routing table.
    pub fn table(&self) -> &RouteTable {
        &self.table
    }

    fn touch_neighbour(&mut self, api: &mut NodeApi<'_>, neighbour: NodeId) {
        self.neighbours.insert(neighbour, api.now());
        let now = api.now();
        let entry = RouteEntry {
            next_hop: neighbour,
            hop_count: 1,
            seqno: self.table.get(neighbour).map_or(0, |r| r.seqno),
            expires: now + self.config.route_timeout,
            valid: true,
        };
        self.table.offer(neighbour, entry, now);
        self.table
            .refresh(neighbour, now + self.config.route_timeout);
    }

    /// Install routes to **every** node on the accumulated path — DYMO's
    /// signature behaviour.
    fn learn_path(&mut self, api: &mut NodeApi<'_>, msg: &RouteMessage, from: NodeId) {
        let now = api.now();
        let len = msg.path.len() as u32;
        for (i, node) in msg.path.iter().enumerate() {
            if node.addr == api.id() {
                continue;
            }
            // The message travelled (len − i) hops from path[i] to us
            // (path[len−1] is our neighbour `from`, one hop away).
            let hops = len - i as u32;
            self.table.offer(
                node.addr,
                RouteEntry {
                    next_hop: from,
                    hop_count: hops,
                    seqno: node.seqno,
                    expires: now + self.config.route_timeout,
                    valid: true,
                },
                now,
            );
        }
    }

    fn start_discovery(&mut self, api: &mut NodeApi<'_>, dst: NodeId) {
        self.seqno = self.seqno.wrapping_add(1);
        self.msg_id = self.msg_id.wrapping_add(1);
        let msg = RouteMessage {
            is_reply: false,
            target: dst,
            target_seq: self.table.get(dst).map(|r| r.seqno),
            msg_id: self.msg_id,
            path: vec![PathNode {
                addr: api.id(),
                seqno: self.seqno,
            }],
        };
        self.seen
            .insert((api.id(), self.msg_id), api.now() + Duration::from_secs(5));
        let size = msg.wire_size();
        let mut packet = Packet::control(api.id(), NodeId::BROADCAST, size, msg);
        packet.ttl = self.config.hop_limit;
        api.send(packet, NodeId::BROADCAST);
    }

    fn send_reply(&mut self, api: &mut NodeApi<'_>, req: &RouteMessage, via: NodeId) {
        self.seqno = self.seqno.wrapping_add(1);
        self.msg_id = self.msg_id.wrapping_add(1);
        let msg = RouteMessage {
            is_reply: true,
            target: req.origin(),
            target_seq: None,
            msg_id: self.msg_id,
            path: vec![PathNode {
                addr: api.id(),
                seqno: self.seqno,
            }],
        };
        let size = msg.wire_size();
        let packet = Packet::control(api.id(), req.origin(), size, msg);
        api.send(packet, via);
    }

    fn forward_data(&mut self, api: &mut NodeApi<'_>, packet: Packet) {
        let now = api.now();
        let dst = packet.dst;
        if let Some(route) = self.table.lookup(dst, now) {
            let nh = route.next_hop;
            self.table.refresh(dst, now + self.config.route_timeout);
            self.table.refresh(nh, now + self.config.route_timeout);
            api.send(packet, nh);
        } else {
            let seq = self.table.get(dst).map_or(0, |r| r.seqno);
            self.flood_rerr(api, vec![(dst, seq)]);
            api.drop_packet(packet, DropReason::NoRoute);
        }
    }

    fn flood_rerr(&mut self, api: &mut NodeApi<'_>, unreachable: Vec<(NodeId, u32)>) {
        if unreachable.is_empty() {
            return;
        }
        let size = 4 + 8 * unreachable.len() as u32;
        let rerr = Rerr { unreachable };
        let packet = Packet::control(api.id(), NodeId::BROADCAST, size, rerr);
        api.send(packet, NodeId::BROADCAST);
    }

    fn flush_pending(&mut self, api: &mut NodeApi<'_>, dst: NodeId) {
        let Some(p) = self.pending.remove(&dst) else {
            return;
        };
        for (packet, _) in p.queued {
            self.forward_data(api, packet);
        }
    }

    fn handle_route_message(
        &mut self,
        api: &mut NodeApi<'_>,
        packet: &Packet,
        msg: &RouteMessage,
        from: NodeId,
    ) {
        let now = api.now();
        if !msg.is_reply {
            let key = (msg.origin(), msg.msg_id);
            if self.seen.contains_key(&key) {
                return;
            }
            self.seen.insert(key, now + Duration::from_secs(5));
        }
        self.touch_neighbour(api, from);
        self.learn_path(api, msg, from);

        if !msg.is_reply {
            if msg.target == api.id() {
                self.send_reply(api, msg, from);
                return;
            }
            // Intermediate reply when a fresh-enough route is known.
            if let Some(route) = self.table.lookup(msg.target, now) {
                let fresh = msg
                    .target_seq
                    .is_none_or(|want| !seq_newer(want, route.seqno));
                if fresh {
                    self.msg_id = self.msg_id.wrapping_add(1);
                    let reply = RouteMessage {
                        is_reply: true,
                        target: msg.origin(),
                        target_seq: None,
                        msg_id: self.msg_id,
                        path: vec![PathNode {
                            addr: msg.target,
                            seqno: route.seqno,
                        }],
                    };
                    let size = reply.wire_size();
                    let reply_packet = Packet::control(api.id(), msg.origin(), size, reply);
                    api.send(reply_packet, from);
                    return;
                }
            }
            // Re-flood with ourselves appended (path accumulation).
            if packet.ttl <= 1 {
                return;
            }
            let mut fwd = msg.clone();
            fwd.path.push(PathNode {
                addr: api.id(),
                seqno: self.seqno,
            });
            let size = fwd.wire_size();
            let mut fwd_packet = Packet::control(msg.origin(), NodeId::BROADCAST, size, fwd);
            fwd_packet.ttl = packet.ttl - 1;
            api.send(fwd_packet, NodeId::BROADCAST);
        } else {
            // RREP travelling back to its target (the original requester).
            if msg.target == api.id() {
                let dst = msg.path.first().expect("non-empty").addr;
                if self.pending.contains_key(&dst) {
                    self.discoveries_succeeded += 1;
                    api.note_route_event(dst, RouteEventKind::DiscoverySuccess);
                }
                self.flush_pending(api, dst);
                // Path accumulation may have satisfied other discoveries.
                // Flush in destination order: HashMap iteration order is
                // per-process random and the send order is observable.
                let mut satisfied: Vec<NodeId> = self
                    .pending
                    .keys()
                    .copied()
                    .filter(|&d| self.table.lookup(d, now).is_some())
                    .collect();
                satisfied.sort_by_key(|d| d.0);
                for d in satisfied {
                    self.discoveries_succeeded += 1;
                    api.note_route_event(d, RouteEventKind::DiscoverySuccess);
                    self.flush_pending(api, d);
                }
                return;
            }
            if let Some(route) = self.table.lookup(msg.target, now) {
                let nh = route.next_hop;
                let mut fwd = msg.clone();
                fwd.path.push(PathNode {
                    addr: api.id(),
                    seqno: self.seqno,
                });
                let size = fwd.wire_size();
                let fwd_packet = Packet::control(api.id(), msg.target, size, fwd);
                api.send(fwd_packet, nh);
            }
        }
    }

    fn handle_rerr(&mut self, api: &mut NodeApi<'_>, rerr: &Rerr, from: NodeId) {
        let mut invalidated = Vec::new();
        for &(dst, seq) in &rerr.unreachable {
            if let Some(route) = self.table.get(dst) {
                if route.valid && route.next_hop == from {
                    self.table.invalidate(dst);
                    invalidated.push((dst, seq));
                }
            }
        }
        // Paper: "they will again inform all their neighbours by
        // multicasting a RERR containing the routes concerned".
        self.flood_rerr(api, invalidated);
    }

    fn link_broken(&mut self, api: &mut NodeApi<'_>, neighbour: NodeId) {
        self.neighbours.remove(&neighbour);
        let broken = self.table.invalidate_via(neighbour);
        self.flood_rerr(api, broken);
    }

    fn tick(&mut self, api: &mut NodeApi<'_>) {
        let now = api.now();
        let deadline = self.config.hello_interval * self.config.allowed_hello_loss;
        // Sort every batch collected from a HashMap before acting on it:
        // iteration order is per-process random, and link_broken /
        // start_discovery / drop_packet all have observable effects.
        let mut stale: Vec<NodeId> = self
            .neighbours
            .iter()
            .filter(|(_, &last)| now.saturating_since(last) > deadline)
            .map(|(&n, _)| n)
            .collect();
        stale.sort_by_key(|n| n.0);
        for n in stale {
            self.link_broken(api, n);
        }
        self.seen.retain(|_, &mut exp| exp > now);
        self.table.purge(now, Duration::from_secs(10));

        let mut due: Vec<NodeId> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(&d, _)| d)
            .collect();
        due.sort_by_key(|d| d.0);
        for dst in due {
            let (retries, give_up) = {
                let p = self.pending.get_mut(&dst).expect("pending entry");
                p.retries += 1;
                (p.retries, p.retries > self.config.max_discovery_retries)
            };
            if give_up {
                self.discoveries_failed += 1;
                api.note_route_event(dst, RouteEventKind::DiscoveryFailure);
                if let Some(p) = self.pending.remove(&dst) {
                    for (packet, _) in p.queued {
                        api.drop_packet(packet, DropReason::DiscoveryFailed);
                    }
                }
            } else {
                self.discovery_retries += 1;
                api.note_route_event(dst, RouteEventKind::DiscoveryRetry);
                let wait = self.config.discovery_timeout * (retries + 1);
                if let Some(p) = self.pending.get_mut(&dst) {
                    p.deadline = now + wait;
                }
                self.start_discovery(api, dst);
            }
        }
        let max_q = self.config.max_queue_time;
        let mut queued_dsts: Vec<NodeId> = self.pending.keys().copied().collect();
        queued_dsts.sort_by_key(|d| d.0);
        for dst in queued_dsts {
            let p = self.pending.get_mut(&dst).expect("pending entry");
            let mut kept = VecDeque::with_capacity(p.queued.len());
            while let Some((packet, at)) = p.queued.pop_front() {
                if now.saturating_since(at) <= max_q {
                    kept.push_back((packet, at));
                } else {
                    api.drop_packet(packet, DropReason::QueueTimeout);
                }
            }
            p.queued = kept;
        }
    }
}

/// Serializer for DYMO's in-flight control payloads (route messages with
/// their accumulated paths, RERRs, HELLOs). Tag bytes are part of the
/// checkpoint format and fixed forever.
#[derive(Debug, Clone, Copy, Default)]
pub struct DymoCodec;

const CTRL_RM: u8 = 1;
const CTRL_RERR: u8 = 2;
const CTRL_HELLO: u8 = 3;

impl ControlCodec for DymoCodec {
    fn encode(&self, blob: &ControlBlob, w: &mut WireWriter) -> Result<(), WireError> {
        if let Some(m) = blob.downcast_ref::<RouteMessage>() {
            w.put_u8(CTRL_RM);
            w.put_bool(m.is_reply);
            write_node_id(w, m.target);
            match m.target_seq {
                None => w.put_bool(false),
                Some(s) => {
                    w.put_bool(true);
                    w.put_u32(s);
                }
            }
            w.put_u32(m.msg_id);
            w.put_usize(m.path.len());
            for node in &m.path {
                write_node_id(w, node.addr);
                w.put_u32(node.seqno);
            }
        } else if let Some(m) = blob.downcast_ref::<Rerr>() {
            w.put_u8(CTRL_RERR);
            w.put_usize(m.unreachable.len());
            for &(dst, seq) in &m.unreachable {
                write_node_id(w, dst);
                w.put_u32(seq);
            }
        } else if let Some(m) = blob.downcast_ref::<Hello>() {
            w.put_u8(CTRL_HELLO);
            w.put_u32(m.seq);
        } else {
            return Err(WireError::Malformed {
                what: "non-DYMO control payload",
                value: 0,
            });
        }
        Ok(())
    }

    fn decode(&self, r: &mut WireReader<'_>) -> Result<ControlBlob, WireError> {
        Ok(match r.get_u8()? {
            CTRL_RM => {
                let is_reply = r.get_bool()?;
                let target = read_node_id(r)?;
                let target_seq = if r.get_bool()? {
                    Some(r.get_u32()?)
                } else {
                    None
                };
                let msg_id = r.get_u32()?;
                let n = r.get_usize()?;
                if n == 0 {
                    // `RouteMessage::origin` relies on a non-empty path.
                    return Err(WireError::Malformed {
                        what: "empty DYMO path",
                        value: 0,
                    });
                }
                let mut path = Vec::with_capacity(n);
                for _ in 0..n {
                    let addr = read_node_id(r)?;
                    let seqno = r.get_u32()?;
                    path.push(PathNode { addr, seqno });
                }
                std::sync::Arc::new(RouteMessage {
                    is_reply,
                    target,
                    target_seq,
                    msg_id,
                    path,
                })
            }
            CTRL_RERR => {
                let n = r.get_usize()?;
                let mut unreachable = Vec::with_capacity(n);
                for _ in 0..n {
                    let dst = read_node_id(r)?;
                    let seq = r.get_u32()?;
                    unreachable.push((dst, seq));
                }
                std::sync::Arc::new(Rerr { unreachable })
            }
            CTRL_HELLO => std::sync::Arc::new(Hello { seq: r.get_u32()? }),
            tag => {
                return Err(WireError::Malformed {
                    what: "dymo control tag",
                    value: u64::from(tag),
                })
            }
        })
    }
}

impl RoutingProtocol for Dymo {
    fn name(&self) -> &'static str {
        "dymo"
    }

    fn start(&mut self, api: &mut NodeApi<'_>) {
        let jitter = Duration::from_millis(api.rng().gen_range(0..200));
        api.schedule(self.config.hello_interval / 2 + jitter, TOKEN_HELLO);
        api.schedule(TICK + jitter, TOKEN_TICK);
    }

    fn route_output(&mut self, api: &mut NodeApi<'_>, packet: Packet) {
        let now = api.now();
        let dst = packet.dst;
        if dst.is_broadcast() {
            api.send(packet, NodeId::BROADCAST);
            return;
        }
        if self.table.lookup(dst, now).is_some() {
            self.forward_data(api, packet);
            return;
        }
        let fresh = !self.pending.contains_key(&dst);
        let deadline = now + self.config.discovery_timeout;
        let entry = self.pending.entry(dst).or_insert_with(|| PendingDiscovery {
            retries: 0,
            deadline,
            queued: VecDeque::new(),
        });
        entry.queued.push_back((packet, now));
        if fresh {
            self.discoveries_started += 1;
            api.note_route_event(dst, RouteEventKind::DiscoveryStart);
            self.start_discovery(api, dst);
        }
    }

    fn handle_received(&mut self, api: &mut NodeApi<'_>, mut packet: Packet, from: NodeId) {
        if let Some(msg) = packet.body.as_control::<RouteMessage>() {
            let msg = msg.clone();
            self.handle_route_message(api, &packet, &msg, from);
            return;
        }
        if let Some(rerr) = packet.body.as_control::<Rerr>() {
            let rerr = rerr.clone();
            self.handle_rerr(api, &rerr, from);
            return;
        }
        if packet.body.as_control::<Hello>().is_some() {
            self.touch_neighbour(api, from);
            return;
        }
        // Data.
        self.touch_neighbour(api, from);
        if packet.dst == api.id() {
            api.deliver_to_app(packet);
            return;
        }
        if packet.ttl <= 1 {
            api.drop_packet(packet, DropReason::TtlExpired);
            return;
        }
        packet.ttl -= 1;
        self.forward_data(api, packet);
    }

    fn handle_timer(&mut self, api: &mut NodeApi<'_>, token: u64) {
        match token {
            TOKEN_HELLO => {
                self.seqno = self.seqno.wrapping_add(1);
                let packet = Packet::control(
                    api.id(),
                    NodeId::BROADCAST,
                    HELLO_SIZE,
                    Hello { seq: self.seqno },
                );
                api.send(packet, NodeId::BROADCAST);
                let jitter = Duration::from_millis(api.rng().gen_range(0..100));
                api.schedule(
                    self.config.hello_interval - Duration::from_millis(50) + jitter,
                    TOKEN_HELLO,
                );
            }
            TOKEN_TICK => {
                self.tick(api);
                api.schedule(TICK, TOKEN_TICK);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn tx_failed(&mut self, api: &mut NodeApi<'_>, packet: Packet, next_hop: NodeId) {
        self.link_broken(api, next_hop);
        if packet.is_data() && packet.src == api.id() {
            self.route_output(api, packet);
        } else if packet.is_data() {
            api.drop_packet(packet, DropReason::RetryLimit);
        }
    }

    fn on_crash(&mut self, api: &mut NodeApi<'_>) {
        // Like AODV, DYMO buffers data behind route discoveries; those
        // packets die with the node. Destination order keeps the drop
        // stream independent of HashMap iteration order.
        let mut dsts: Vec<NodeId> = self.pending.keys().copied().collect();
        dsts.sort_by_key(|d| d.0);
        for dst in dsts {
            if let Some(p) = self.pending.remove(&dst) {
                for (packet, _) in p.queued {
                    api.drop_packet(packet, DropReason::NodeDown);
                }
            }
        }
    }

    fn telemetry(&self) -> RoutingTelemetry {
        RoutingTelemetry {
            route_table_size: self.table.len() as u64,
            neighbours: self.neighbours.len() as u64,
            discoveries_started: self.discoveries_started,
            discovery_retries: self.discovery_retries,
            discoveries_succeeded: self.discoveries_succeeded,
            discoveries_failed: self.discoveries_failed,
            mpr_set_size: 0,
        }
    }

    fn capture_state(&self, w: &mut WireWriter) -> Result<(), WireError> {
        self.table.capture(w);
        w.put_u32(self.seqno);
        w.put_u32(self.msg_id);
        let mut seen: Vec<(NodeId, u32)> = self.seen.keys().copied().collect();
        seen.sort_by_key(|&(n, id)| (n.0, id));
        w.put_usize(seen.len());
        for key in seen {
            write_node_id(w, key.0);
            w.put_u32(key.1);
            write_time(w, self.seen[&key]);
        }
        let mut neigh: Vec<NodeId> = self.neighbours.keys().copied().collect();
        neigh.sort_by_key(|n| n.0);
        w.put_usize(neigh.len());
        for n in neigh {
            write_node_id(w, n);
            write_time(w, self.neighbours[&n]);
        }
        let mut dsts: Vec<NodeId> = self.pending.keys().copied().collect();
        dsts.sort_by_key(|d| d.0);
        w.put_usize(dsts.len());
        for dst in dsts {
            let p = &self.pending[&dst];
            write_node_id(w, dst);
            w.put_u32(p.retries);
            write_time(w, p.deadline);
            w.put_usize(p.queued.len());
            for (packet, queued_at) in &p.queued {
                write_packet(w, packet, &DataOnlyCodec)?;
                write_time(w, *queued_at);
            }
        }
        for v in [
            self.discoveries_started,
            self.discovery_retries,
            self.discoveries_succeeded,
            self.discoveries_failed,
        ] {
            w.put_u64(v);
        }
        Ok(())
    }

    fn restore_state(&mut self, r: &mut WireReader<'_>) -> Result<(), WireError> {
        self.table.restore(r)?;
        self.seqno = r.get_u32()?;
        self.msg_id = r.get_u32()?;
        self.seen.clear();
        let n = r.get_usize()?;
        for _ in 0..n {
            let node = read_node_id(r)?;
            let id = r.get_u32()?;
            let expires = read_time(r)?;
            self.seen.insert((node, id), expires);
        }
        self.neighbours.clear();
        let n = r.get_usize()?;
        for _ in 0..n {
            let node = read_node_id(r)?;
            let heard = read_time(r)?;
            self.neighbours.insert(node, heard);
        }
        self.pending.clear();
        let n = r.get_usize()?;
        for _ in 0..n {
            let dst = read_node_id(r)?;
            let retries = r.get_u32()?;
            let deadline = read_time(r)?;
            let qn = r.get_usize()?;
            let mut queued = VecDeque::with_capacity(qn);
            for _ in 0..qn {
                let packet = read_packet(r, &DataOnlyCodec)?;
                let queued_at = read_time(r)?;
                queued.push_back((packet, queued_at));
            }
            self.pending.insert(
                dst,
                PendingDiscovery {
                    retries,
                    deadline,
                    queued,
                },
            );
        }
        self.discoveries_started = r.get_u64()?;
        self.discovery_retries = r.get_u64()?;
        self.discoveries_succeeded = r.get_u64()?;
        self.discoveries_failed = r.get_u64()?;
        Ok(())
    }

    fn control_codec(&self) -> Option<Box<dyn ControlCodec>> {
        Some(Box::new(DymoCodec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_line, run_ring};

    #[test]
    fn name() {
        assert_eq!(Dymo::new().name(), "dymo");
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        crate::testutil::assert_snapshot_round_trip(4, |_| Box::new(Dymo::new()), 8.0, 7);
    }

    #[test]
    fn codec_round_trips_every_control_message() {
        let codec = DymoCodec;
        let blobs: Vec<ControlBlob> = vec![
            std::sync::Arc::new(RouteMessage {
                is_reply: false,
                target: NodeId(3),
                target_seq: None,
                msg_id: 5,
                path: vec![PathNode {
                    addr: NodeId(0),
                    seqno: 2,
                }],
            }),
            std::sync::Arc::new(RouteMessage {
                is_reply: true,
                target: NodeId(0),
                target_seq: Some(7),
                msg_id: 5,
                path: vec![
                    PathNode {
                        addr: NodeId(3),
                        seqno: 9,
                    },
                    PathNode {
                        addr: NodeId(2),
                        seqno: 1,
                    },
                ],
            }),
            std::sync::Arc::new(Rerr {
                unreachable: vec![(NodeId(5), 11)],
            }),
            std::sync::Arc::new(Hello { seq: 42 }),
        ];
        for blob in blobs {
            let mut w = WireWriter::new();
            codec.encode(&blob, &mut w).expect("encode");
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            let decoded = codec.decode(&mut r).expect("decode");
            r.finish().expect("whole stream consumed");
            let mut w2 = WireWriter::new();
            codec.encode(&decoded, &mut w2).expect("re-encode");
            assert_eq!(bytes, w2.into_bytes(), "codec round trip not stable");
        }
    }

    #[test]
    fn codec_rejects_empty_path() {
        // RouteMessage::origin() panics on an empty path, so the decoder
        // must refuse to materialize one from a (corrupt) snapshot.
        let codec = DymoCodec;
        let mut w = WireWriter::new();
        w.put_u8(CTRL_RM);
        w.put_bool(false);
        write_node_id(&mut w, NodeId(3));
        w.put_bool(false); // no target_seq
        w.put_u32(5);
        w.put_usize(0); // empty path — must be rejected
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            codec.decode(&mut r),
            Err(WireError::Malformed {
                what: "empty DYMO path",
                ..
            })
        ));
    }

    #[test]
    fn single_hop_delivery() {
        let (log, _) = run_line(2, 200.0, |_| Box::new(Dymo::new()), 0, 1, 10, 10.0, 1);
        assert_eq!(log.borrow().received.len(), 10);
    }

    #[test]
    fn multi_hop_delivery() {
        let (log, _) = run_line(5, 200.0, |_| Box::new(Dymo::new()), 0, 4, 10, 15.0, 2);
        let got = log.borrow().received.len();
        assert!(got >= 9, "DYMO should deliver nearly all, got {got}/10");
    }

    #[test]
    fn ring_delivery() {
        let (log, _) = run_ring(30, 3000.0, |_| Box::new(Dymo::new()), 5, 0, 10, 20.0, 3);
        let got = log.borrow().received.len();
        assert!(got >= 8, "ring delivery too low: {got}/10");
    }

    #[test]
    fn partitioned_destination_not_delivered() {
        let mobility =
            cavenet_net::StaticMobility::new(vec![(0.0, 0.0), (200.0, 0.0), (5000.0, 0.0)]);
        let (log, _) = crate::testutil::run_with_mobility(
            mobility,
            3,
            |_| Box::new(Dymo::new()),
            0,
            2,
            5,
            15.0,
            5,
        );
        assert_eq!(log.borrow().received.len(), 0);
    }

    #[test]
    fn delivery_matches_aodv_on_same_scenario() {
        let (dymo_log, _) = run_line(5, 200.0, |_| Box::new(Dymo::new()), 0, 4, 10, 15.0, 6);
        let (aodv_log, _) = run_line(
            5,
            200.0,
            |_| Box::new(crate::Aodv::new()),
            0,
            4,
            10,
            15.0,
            6,
        );
        let d = dymo_log.borrow().received.len() as i64;
        let a = aodv_log.borrow().received.len() as i64;
        assert!((d - a).abs() <= 2, "DYMO {d} vs AODV {a}");
    }

    #[test]
    fn second_flow_reuses_accumulated_routes() {
        // Flow 1: 0→4 discovers through 1,2,3. Flow 2: 2→0 afterwards.
        // Node 2 learned a route to 0 from flow 1's RREQ path accumulation,
        // so flow 2's first packet should go out with NO new discovery —
        // observable as low first-packet latency.
        use cavenet_net::{NodeId, ScenarioConfig, Simulator, StaticMobility};
        use std::cell::RefCell;
        use std::rc::Rc;

        struct RelaySink {
            log: Rc<RefCell<crate::testutil::SinkLog>>,
        }
        impl cavenet_net::Application for RelaySink {
            fn handle_packet(&mut self, api: &mut NodeApi<'_>, packet: &Packet) {
                if let Some(d) = packet.body.as_data() {
                    self.log.borrow_mut().received.push((d.seq, api.now()));
                }
            }
        }

        let log4 = Rc::new(RefCell::new(crate::testutil::SinkLog::default()));
        let log0 = Rc::new(RefCell::new(crate::testutil::SinkLog::default()));
        // Node 0 sources flow 1 AND sinks flow 2 — combine in one app.
        struct SourceAndSink {
            src: crate::testutil::TestSource,
            log: Rc<RefCell<crate::testutil::SinkLog>>,
        }
        impl cavenet_net::Application for SourceAndSink {
            fn start(&mut self, api: &mut NodeApi<'_>) {
                self.src.start(api);
            }
            fn handle_timer(&mut self, api: &mut NodeApi<'_>, token: u64) {
                self.src.handle_timer(api, token);
            }
            fn handle_packet(&mut self, api: &mut NodeApi<'_>, packet: &Packet) {
                if let Some(d) = packet.body.as_data() {
                    self.log.borrow_mut().received.push((d.seq, api.now()));
                }
            }
        }

        let mut flow2 = crate::testutil::TestSource::new(NodeId(0), 3);
        flow2.start_delay = Duration::from_secs(6);
        let mut sim = Simulator::builder(ScenarioConfig::default())
            .nodes(5)
            .seed(7)
            .mobility(Box::new(StaticMobility::line(5, 200.0)))
            .routing_with(|_| Box::new(Dymo::new()))
            .app(
                0,
                Box::new(SourceAndSink {
                    src: crate::testutil::TestSource::new(NodeId(4), 5),
                    log: Rc::clone(&log0),
                }),
            )
            .app(2, Box::new(flow2))
            .app(
                4,
                Box::new(RelaySink {
                    log: Rc::clone(&log4),
                }),
            )
            .build();
        sim.run_until_secs(15.0);
        assert!(log4.borrow().received.len() >= 4, "flow 1 delivered");
        let log0 = log0.borrow();
        assert!(log0.received.len() >= 2, "flow 2 delivered");
        // Flow 2 starts at 6 s; with a pre-learned route the first packet
        // should arrive within ~50 ms (no 1 s discovery round-trip wait).
        let (_, first_at) = log0.received[0];
        let latency = first_at.as_secs_f64() - 6.0;
        assert!(
            latency < 0.5,
            "path accumulation should avoid rediscovery, latency {latency}"
        );
    }

    #[test]
    fn default_config_matches_table1() {
        assert_eq!(DymoConfig::default().hello_interval, Duration::from_secs(1));
    }

    #[test]
    fn routes_expire_after_their_lifetime() {
        // 5 packets sent between 0.5 s and 1.3 s keep the 2-hop route in
        // use until ~1.3 s; with route_timeout = 5 s the entry must still
        // be usable at 4 s and gone (expired) well after 6.3 s. Hellos only
        // refresh direct-neighbour routes, not the multi-hop one.
        assert_eq!(DymoConfig::default().route_timeout, Duration::from_secs(5));
        let (log, mut sim) = run_line(3, 200.0, |_| Box::new(Dymo::new()), 0, 2, 5, 4.0, 6);
        assert_eq!(log.borrow().received.len(), 5);
        let lookup_at_src = |sim: &cavenet_net::Simulator| {
            sim.routing(0)
                .expect("routing attached")
                .as_any()
                .expect("DYMO opts into downcasting")
                .downcast_ref::<Dymo>()
                .expect("protocol is DYMO")
                .table()
                .lookup(NodeId(2), sim.now())
                .copied()
        };
        assert!(
            lookup_at_src(&sim).is_some(),
            "route must still be alive within its 5 s lifetime"
        );
        sim.run_until_secs(12.0);
        assert!(
            lookup_at_src(&sim).is_none(),
            "route must have expired 5 s after its last use"
        );
    }
}
