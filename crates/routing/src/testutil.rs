//! Shared helpers for protocol tests: a deterministic packet source/sink
//! pair and scenario runners over line and ring topologies.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use cavenet_net::{
    Application, FlowId, NodeApi, NodeId, Packet, RoutingProtocol, ScenarioConfig, SimTime,
    Simulator, StaticMobility, WireReader, WireWriter,
};

/// Sequence numbers and receive times observed by a sink.
#[derive(Debug, Default)]
pub(crate) struct SinkLog {
    pub received: Vec<(u32, SimTime)>,
}

/// Sends `count` packets of 512 B to `dst`, one every `interval`, starting
/// after `start_delay`.
pub(crate) struct TestSource {
    pub dst: NodeId,
    pub interval: Duration,
    pub count: u32,
    pub start_delay: Duration,
    sent: u32,
}

impl TestSource {
    pub fn new(dst: NodeId, count: u32) -> Self {
        TestSource {
            dst,
            interval: Duration::from_millis(200),
            count,
            start_delay: Duration::from_millis(500),
            sent: 0,
        }
    }
}

impl Application for TestSource {
    fn start(&mut self, api: &mut NodeApi<'_>) {
        if self.count > 0 {
            api.schedule(self.start_delay, 0);
        }
    }

    fn handle_timer(&mut self, api: &mut NodeApi<'_>, _token: u64) {
        let flow = FlowId::new(api.id(), self.dst, 0);
        api.originate(Packet::data(flow, self.sent, 512, api.now()));
        self.sent += 1;
        if self.sent < self.count {
            api.schedule(self.interval, 0);
        }
    }
}

/// Records every data packet that arrives.
pub(crate) struct TestSink {
    pub log: Rc<RefCell<SinkLog>>,
}

impl Application for TestSink {
    fn handle_packet(&mut self, api: &mut NodeApi<'_>, packet: &Packet) {
        if let Some(d) = packet.body.as_data() {
            self.log.borrow_mut().received.push((d.seq, api.now()));
        }
    }
}

/// Run `packets` packets from node `src` to node `dst` on an `n`-node line
/// with the given spacing, under the protocol produced by `factory`.
/// Returns the sink log and the finished simulator.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_line<F>(
    n: usize,
    spacing: f64,
    factory: F,
    src: usize,
    dst: usize,
    packets: u32,
    secs: f64,
    seed: u64,
) -> (Rc<RefCell<SinkLog>>, Simulator)
where
    F: Fn(usize) -> Box<dyn RoutingProtocol> + 'static,
{
    run_with_mobility(
        StaticMobility::line(n, spacing),
        n,
        factory,
        src,
        dst,
        packets,
        secs,
        seed,
    )
}

/// Same as [`run_line`] on a ring topology of the given circumference.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_ring<F>(
    n: usize,
    circumference: f64,
    factory: F,
    src: usize,
    dst: usize,
    packets: u32,
    secs: f64,
    seed: u64,
) -> (Rc<RefCell<SinkLog>>, Simulator)
where
    F: Fn(usize) -> Box<dyn RoutingProtocol> + 'static,
{
    run_with_mobility(
        StaticMobility::ring(n, circumference),
        n,
        factory,
        src,
        dst,
        packets,
        secs,
        seed,
    )
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run_with_mobility<F>(
    mobility: StaticMobility,
    n: usize,
    factory: F,
    src: usize,
    dst: usize,
    packets: u32,
    secs: f64,
    seed: u64,
) -> (Rc<RefCell<SinkLog>>, Simulator)
where
    F: Fn(usize) -> Box<dyn RoutingProtocol> + 'static,
{
    let log = Rc::new(RefCell::new(SinkLog::default()));
    let mut sim = Simulator::builder(ScenarioConfig::default())
        .nodes(n)
        .seed(seed)
        .mobility(Box::new(mobility))
        .routing_with(factory)
        .app(src, Box::new(TestSource::new(NodeId(dst as u32), packets)))
        .app(
            dst,
            Box::new(TestSink {
                log: Rc::clone(&log),
            }),
        )
        .build();
    sim.run_until_secs(secs);
    (log, sim)
}

/// Drive a warmed-up line scenario, then prove that every node's routing
/// state survives a capture → restore-into-fresh-instance → re-capture
/// cycle bit-identically.
pub(crate) fn assert_snapshot_round_trip<F>(n: usize, factory: F, secs: f64, seed: u64)
where
    F: Fn(usize) -> Box<dyn RoutingProtocol> + Clone + 'static,
{
    let (_, sim) = run_line(n, 200.0, factory.clone(), 0, n - 1, 10, secs, seed);
    for i in 0..n {
        let proto = sim.routing(i).expect("routing attached");
        let mut w = WireWriter::new();
        proto.capture_state(&mut w).expect("capture");
        let bytes = w.into_bytes();
        assert!(
            !bytes.is_empty(),
            "node {i}: warmed-up protocol produced an empty snapshot"
        );

        let mut fresh = factory(i);
        let mut r = WireReader::new(&bytes);
        fresh.restore_state(&mut r).expect("restore");
        r.finish().expect("restore must consume the whole stream");

        let mut w2 = WireWriter::new();
        fresh.capture_state(&mut w2).expect("re-capture");
        assert_eq!(
            bytes,
            w2.into_bytes(),
            "node {i}: restore → capture is not bit-identical"
        );
    }
}
