//! TTL-scoped flooding — the trivial baseline.
//!
//! Every data packet is rebroadcast once by every node that has not seen it
//! before, until its TTL runs out. Delivers whenever *any* path exists, at
//! the price of maximal overhead; useful both as a lower bound on routing
//! intelligence and as a plumbing check for the simulator.

use std::collections::HashSet;

use cavenet_net::{
    DropReason, NodeApi, NodeId, Packet, RoutingProtocol, RoutingTelemetry, WireError, WireReader,
    WireWriter,
};

/// The flooding "protocol".
#[derive(Debug, Default)]
pub struct Flooding {
    seen: HashSet<u64>,
    /// Maximum hops a packet may travel.
    ttl: u8,
}

impl Flooding {
    /// Flooding with the default 16-hop budget.
    pub fn new() -> Self {
        Flooding {
            seen: HashSet::new(),
            ttl: 16,
        }
    }

    /// Flooding with a custom hop budget.
    pub fn with_ttl(ttl: u8) -> Self {
        Flooding {
            seen: HashSet::new(),
            ttl,
        }
    }
}

impl RoutingProtocol for Flooding {
    fn name(&self) -> &'static str {
        "flooding"
    }

    fn route_output(&mut self, api: &mut NodeApi<'_>, mut packet: Packet) {
        packet.ttl = self.ttl;
        self.remember(&packet);
        api.send(packet, NodeId::BROADCAST);
    }

    fn handle_received(&mut self, api: &mut NodeApi<'_>, mut packet: Packet, _from: NodeId) {
        if !self.remember(&packet) {
            return; // duplicate
        }
        if packet.dst == api.id() {
            api.deliver_to_app(packet);
            return;
        }
        if packet.dst.is_broadcast() {
            api.deliver_to_app(packet.clone());
        }
        if packet.ttl <= 1 {
            api.drop_packet(packet, DropReason::TtlExpired);
            return;
        }
        packet.ttl -= 1;
        api.send(packet, NodeId::BROADCAST);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn telemetry(&self) -> RoutingTelemetry {
        RoutingTelemetry {
            // Flooding keeps no routes; the duplicate-suppression set is
            // its only table-like state.
            route_table_size: self.seen.len() as u64,
            ..RoutingTelemetry::default()
        }
    }

    fn on_crash(&mut self, _api: &mut NodeApi<'_>) {
        // Flooding holds no packets — every data packet is rebroadcast or
        // dropped the moment it is seen — so a crash surrenders nothing.
        // The duplicate-suppression set may survive a warm restart safely:
        // suppressing a pre-crash duplicate is still correct.
    }

    fn capture_state(&self, w: &mut WireWriter) -> Result<(), WireError> {
        let mut seen: Vec<u64> = self.seen.iter().copied().collect();
        seen.sort_unstable();
        w.put_usize(seen.len());
        for key in seen {
            w.put_u64(key);
        }
        w.put_u8(self.ttl);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut WireReader<'_>) -> Result<(), WireError> {
        self.seen.clear();
        for _ in 0..r.get_usize()? {
            self.seen.insert(r.get_u64()?);
        }
        self.ttl = r.get_u8()?;
        Ok(())
    }

    // Flooding sends no control packets, so the default `control_codec`
    // (None) is correct.
}

impl Flooding {
    /// Returns `true` if the packet was new.
    fn remember(&mut self, packet: &Packet) -> bool {
        let key = flood_key(packet);
        self.seen.insert(key)
    }
}

/// Duplicate-suppression key: `(source, sequence)` — stable across hops
/// and independent of the engine-assigned uid.
fn flood_key(packet: &Packet) -> u64 {
    let seq = packet.body.as_data().map_or(u32::MAX, |d| d.seq);
    (u64::from(packet.src.0) << 32) | u64::from(seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_line, run_ring};

    #[test]
    fn name() {
        assert_eq!(Flooding::new().name(), "flooding");
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        crate::testutil::assert_snapshot_round_trip(4, |_| Box::new(Flooding::new()), 6.0, 7);
    }

    #[test]
    fn delivers_across_multiple_hops() {
        // 5 nodes, 200 m spacing: src 0 → dst 4 is 4 hops.
        let (log, _sim) = run_line(5, 200.0, |_| Box::new(Flooding::new()), 0, 4, 10, 10.0, 1);
        let got = log.borrow().received.len();
        assert!(
            got >= 8,
            "flooding should deliver most packets, got {got}/10"
        );
    }

    #[test]
    fn respects_ttl() {
        // TTL 2 cannot span 4 hops.
        let (log, _sim) = run_line(
            5,
            200.0,
            |_| Box::new(Flooding::with_ttl(2)),
            0,
            4,
            5,
            10.0,
            1,
        );
        assert_eq!(log.borrow().received.len(), 0, "TTL 2 must not reach hop 4");
    }

    #[test]
    fn no_duplicate_deliveries_on_ring() {
        // On a ring the flood arrives from both directions; duplicates must
        // be suppressed.
        let (log, _sim) = run_ring(10, 2000.0, |_| Box::new(Flooding::new()), 0, 5, 5, 10.0, 2);
        let mut seqs: Vec<u32> = log.borrow().received.iter().map(|&(s, _)| s).collect();
        let before = seqs.len();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), before, "duplicate deliveries detected");
        assert!(before >= 4, "most packets should arrive, got {before}/5");
    }

    #[test]
    fn overhead_scales_with_node_count() {
        let (_, sim) = run_line(6, 200.0, |_| Box::new(Flooding::new()), 0, 5, 5, 10.0, 3);
        // Every intermediate node rebroadcasts each packet once: ≥ 4
        // forwards per packet (nodes 1–4, sometimes 5 re-floods too).
        let forwards: u64 = (0..6).map(|i| sim.node_stats(i).data_forwarded).sum();
        assert!(forwards >= 15, "flooding forwards a lot, got {forwards}");
    }
}
