//! Ad-hoc On-demand Distance Vector routing (RFC 3561).
//!
//! AODV is reactive: routes are discovered only when needed, by flooding a
//! Route Request (RREQ) and unicasting a Route Reply (RREP) back along the
//! reverse path. Loop freedom comes from per-destination sequence numbers.
//! Link breakage — detected by HELLO silence or MAC transmission failure —
//! triggers Route Errors (RERR) that invalidate affected routes upstream
//! (paper §III-B-2).

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use cavenet_net::snapshot::{
    read_duration, read_node_id, read_packet, read_time, write_duration, write_node_id,
    write_packet, write_time,
};
use cavenet_net::{
    ControlBlob, ControlCodec, DataOnlyCodec, DropReason, NodeApi, NodeId, Packet, RouteEventKind,
    RoutingProtocol, RoutingTelemetry, SimTime, WireError, WireReader, WireWriter,
};

use crate::table::{seq_newer, RouteEntry, RouteTable};

/// AODV tunables (RFC 3561 §10 defaults, with the paper's 1 s HELLO
/// interval from Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AodvConfig {
    /// HELLO broadcast interval (Table 1: 1 s).
    pub hello_interval: Duration,
    /// Missed HELLOs before a neighbour is declared lost.
    pub allowed_hello_loss: u32,
    /// Lifetime granted to routes used or created by data traffic.
    pub active_route_timeout: Duration,
    /// How long a route-discovery attempt waits before retrying.
    pub discovery_timeout: Duration,
    /// Maximum RREQ retries per discovery (RREQ_RETRIES).
    pub max_discovery_retries: u32,
    /// RREQ flood TTL.
    pub net_diameter: u8,
    /// How long buffered data waits for a route before being dropped.
    pub max_queue_time: Duration,
    /// Use the expanding-ring search (RFC 3561 §6.4): probe with growing
    /// TTLs before flooding the whole network. Off by default — the
    /// simplified full-flood discovery is easier to reason about and is
    /// what the committed reference numbers use.
    pub expanding_ring: bool,
    /// Conservative per-hop traversal estimate (NODE_TRAVERSAL_TIME) used
    /// to size ring-search timeouts.
    pub node_traversal_time: Duration,
    /// First ring TTL (TTL_START).
    pub ttl_start: u8,
    /// Ring TTL growth per attempt (TTL_INCREMENT).
    pub ttl_increment: u8,
    /// Beyond this TTL the search jumps to `net_diameter` (TTL_THRESHOLD).
    pub ttl_threshold: u8,
}

impl Default for AodvConfig {
    fn default() -> Self {
        AodvConfig {
            hello_interval: Duration::from_secs(1),
            allowed_hello_loss: 2,
            active_route_timeout: Duration::from_secs(3),
            discovery_timeout: Duration::from_millis(1500),
            max_discovery_retries: 2,
            net_diameter: 35,
            max_queue_time: Duration::from_secs(10),
            expanding_ring: false,
            node_traversal_time: Duration::from_millis(40),
            ttl_start: 1,
            ttl_increment: 2,
            ttl_threshold: 7,
        }
    }
}

impl AodvConfig {
    /// RING_TRAVERSAL_TIME for a search of radius `ttl`
    /// (RFC 3561: `2 · NODE_TRAVERSAL_TIME · (TTL + TIMEOUT_BUFFER)` with
    /// TIMEOUT_BUFFER = 2).
    fn ring_traversal_time(&self, ttl: u8) -> Duration {
        self.node_traversal_time * 2 * (u32::from(ttl) + 2)
    }
}

/// Route Request (wire size ≈ 24 bytes).
#[derive(Debug, Clone)]
struct Rreq {
    rreq_id: u32,
    dst: NodeId,
    dst_seq: Option<u32>,
    origin: NodeId,
    origin_seq: u32,
    hop_count: u32,
}

/// Route Reply (wire size ≈ 20 bytes).
#[derive(Debug, Clone)]
struct Rrep {
    dst: NodeId,
    dst_seq: u32,
    origin: NodeId,
    hop_count: u32,
    lifetime: Duration,
}

/// Route Error (wire size ≈ 4 + 8·n bytes).
#[derive(Debug, Clone)]
struct Rerr {
    unreachable: Vec<(NodeId, u32)>,
}

/// HELLO beacon (RFC: a TTL-1 RREP; wire size ≈ 20 bytes).
#[derive(Debug, Clone)]
struct Hello {
    seq: u32,
}

const RREQ_SIZE: u32 = 24;
const RREP_SIZE: u32 = 20;
const HELLO_SIZE: u32 = 20;
const TOKEN_HELLO: u64 = 1;
const TOKEN_TICK: u64 = 2;
const TICK: Duration = Duration::from_millis(250);

#[derive(Debug)]
struct PendingDiscovery {
    retries: u32,
    deadline: SimTime,
    /// Current search radius (TTL) — grows under expanding-ring search.
    ttl: u8,
    queued: VecDeque<(Packet, SimTime)>,
}

/// The AODV routing protocol state for one node.
#[derive(Debug)]
pub struct Aodv {
    config: AodvConfig,
    table: RouteTable,
    seqno: u32,
    rreq_id: u32,
    /// RREQ duplicate cache: (origin, rreq_id) → expiry.
    seen_rreq: HashMap<(NodeId, u32), SimTime>,
    /// Last time each neighbour was heard.
    neighbours: HashMap<NodeId, SimTime>,
    pending: HashMap<NodeId, PendingDiscovery>,
    /// Lifetime discovery counters reported through
    /// [`RoutingProtocol::telemetry`]; purely observational.
    discoveries_started: u64,
    discovery_retries: u64,
    discoveries_succeeded: u64,
    discoveries_failed: u64,
}

impl Default for Aodv {
    fn default() -> Self {
        Self::new()
    }
}

impl Aodv {
    /// AODV with default configuration.
    pub fn new() -> Self {
        Self::with_config(AodvConfig::default())
    }

    /// AODV with explicit configuration.
    pub fn with_config(config: AodvConfig) -> Self {
        Aodv {
            config,
            table: RouteTable::new(),
            seqno: 0,
            rreq_id: 0,
            seen_rreq: HashMap::new(),
            neighbours: HashMap::new(),
            pending: HashMap::new(),
            discoveries_started: 0,
            discovery_retries: 0,
            discoveries_succeeded: 0,
            discoveries_failed: 0,
        }
    }

    /// Read access to the routing table (for inspection and tests).
    pub fn table(&self) -> &RouteTable {
        &self.table
    }

    fn route_lifetime(&self, api: &NodeApi<'_>) -> SimTime {
        api.now() + self.config.active_route_timeout
    }

    /// Note that we can hear `neighbour` (creates/refreshes the 1-hop
    /// route).
    fn touch_neighbour(&mut self, api: &mut NodeApi<'_>, neighbour: NodeId, seq: Option<u32>) {
        self.neighbours.insert(neighbour, api.now());
        let expires = self.route_lifetime(api);
        let entry = RouteEntry {
            next_hop: neighbour,
            hop_count: 1,
            seqno: seq.unwrap_or_else(|| self.table.get(neighbour).map_or(0, |r| r.seqno)),
            expires,
            valid: true,
        };
        self.table.offer(neighbour, entry, api.now());
        self.table.refresh(neighbour, expires);
    }

    fn start_discovery(&mut self, api: &mut NodeApi<'_>, dst: NodeId, first: bool, ttl: u8) {
        if first {
            self.seqno = self.seqno.wrapping_add(1);
        }
        self.rreq_id = self.rreq_id.wrapping_add(1);
        let rreq = Rreq {
            rreq_id: self.rreq_id,
            dst,
            dst_seq: self.table.get(dst).map(|r| r.seqno),
            origin: api.id(),
            origin_seq: self.seqno,
            hop_count: 0,
        };
        // Remember our own RREQ so we do not re-process it.
        self.seen_rreq
            .insert((api.id(), self.rreq_id), api.now() + Duration::from_secs(5));
        let mut packet = Packet::control(api.id(), NodeId::BROADCAST, RREQ_SIZE, rreq);
        packet.ttl = ttl;
        api.send(packet, NodeId::BROADCAST);
    }

    /// Initial search radius for a fresh discovery.
    fn initial_ttl(&self) -> u8 {
        if self.config.expanding_ring {
            self.config.ttl_start
        } else {
            self.config.net_diameter
        }
    }

    /// Timeout for a search at the given radius.
    fn discovery_wait(&self, ttl: u8) -> Duration {
        if self.config.expanding_ring {
            self.config.ring_traversal_time(ttl)
        } else {
            self.config.discovery_timeout
        }
    }

    fn flush_pending(&mut self, api: &mut NodeApi<'_>, dst: NodeId) {
        let Some(p) = self.pending.remove(&dst) else {
            return;
        };
        for (packet, _) in p.queued {
            self.forward_data(api, packet);
        }
    }

    fn forward_data(&mut self, api: &mut NodeApi<'_>, packet: Packet) {
        let now = api.now();
        let dst = packet.dst;
        if let Some(route) = self.table.lookup(dst, now) {
            let nh = route.next_hop;
            let lifetime = now + self.config.active_route_timeout;
            self.table.refresh(dst, lifetime);
            self.table.refresh(nh, lifetime);
            api.send(packet, nh);
        } else {
            // No route mid-path: drop and report upstream.
            self.originate_rerr(api, vec![(dst, self.table.get(dst).map_or(0, |r| r.seqno))]);
            api.drop_packet(packet, DropReason::NoRoute);
        }
    }

    fn originate_rerr(&mut self, api: &mut NodeApi<'_>, unreachable: Vec<(NodeId, u32)>) {
        if unreachable.is_empty() {
            return;
        }
        let size = 4 + 8 * unreachable.len() as u32;
        let rerr = Rerr { unreachable };
        let packet = Packet::control(api.id(), NodeId::BROADCAST, size, rerr);
        api.send(packet, NodeId::BROADCAST);
    }

    fn handle_rreq(&mut self, api: &mut NodeApi<'_>, packet: &Packet, rreq: &Rreq, from: NodeId) {
        let now = api.now();
        // Duplicate suppression.
        let key = (rreq.origin, rreq.rreq_id);
        if self.seen_rreq.contains_key(&key) {
            return;
        }
        self.seen_rreq.insert(key, now + Duration::from_secs(5));

        self.touch_neighbour(api, from, None);
        // Reverse route to the originator through `from`.
        let hops = rreq.hop_count + 1;
        self.table.offer(
            rreq.origin,
            RouteEntry {
                next_hop: from,
                hop_count: hops,
                seqno: rreq.origin_seq,
                expires: now + self.config.active_route_timeout,
                valid: true,
            },
            now,
        );

        if rreq.dst == api.id() {
            // RFC 3561 §6.6.1: destination sets its seq to max(own, RREQ's).
            if let Some(ds) = rreq.dst_seq {
                if seq_newer(ds, self.seqno) {
                    self.seqno = ds;
                }
            }
            self.seqno = self.seqno.wrapping_add(1);
            let rrep = Rrep {
                dst: api.id(),
                dst_seq: self.seqno,
                origin: rreq.origin,
                hop_count: 0,
                lifetime: self.config.active_route_timeout,
            };
            let reply = Packet::control(api.id(), rreq.origin, RREP_SIZE, rrep);
            api.send(reply, from);
            return;
        }

        // Intermediate node with a fresh-enough valid route replies itself.
        if let Some(route) = self.table.lookup(rreq.dst, now) {
            let fresh_enough = rreq
                .dst_seq
                .is_none_or(|want| !seq_newer(want, route.seqno));
            if fresh_enough {
                let rrep = Rrep {
                    dst: rreq.dst,
                    dst_seq: route.seqno,
                    origin: rreq.origin,
                    hop_count: route.hop_count,
                    lifetime: self.config.active_route_timeout,
                };
                let reply = Packet::control(api.id(), rreq.origin, RREP_SIZE, rrep);
                api.send(reply, from);
                return;
            }
        }

        // Otherwise re-flood.
        if packet.ttl <= 1 {
            return;
        }
        let fwd = Rreq {
            hop_count: hops,
            ..rreq.clone()
        };
        let mut fwd_packet = Packet::control(rreq.origin, NodeId::BROADCAST, RREQ_SIZE, fwd);
        fwd_packet.ttl = packet.ttl - 1;
        api.send(fwd_packet, NodeId::BROADCAST);
    }

    fn handle_rrep(&mut self, api: &mut NodeApi<'_>, rrep: &Rrep, from: NodeId) {
        let now = api.now();
        self.touch_neighbour(api, from, None);
        // Forward route to the destination through `from`.
        let hops = rrep.hop_count + 1;
        self.table.offer(
            rrep.dst,
            RouteEntry {
                next_hop: from,
                hop_count: hops,
                seqno: rrep.dst_seq,
                expires: now + rrep.lifetime,
                valid: true,
            },
            now,
        );

        if rrep.origin == api.id() {
            if self.pending.contains_key(&rrep.dst) {
                self.discoveries_succeeded += 1;
                api.note_route_event(rrep.dst, RouteEventKind::DiscoverySuccess);
            }
            self.flush_pending(api, rrep.dst);
            return;
        }
        // Forward the RREP along the reverse route.
        if let Some(rev) = self.table.lookup(rrep.origin, now) {
            let nh = rev.next_hop;
            let fwd = Rrep {
                hop_count: hops,
                ..rrep.clone()
            };
            let fwd_packet = Packet::control(api.id(), rrep.origin, RREP_SIZE, fwd);
            api.send(fwd_packet, nh);
        }
    }

    fn handle_rerr(&mut self, api: &mut NodeApi<'_>, rerr: &Rerr, from: NodeId) {
        let now = api.now();
        let mut propagate = Vec::new();
        for &(dst, seq) in &rerr.unreachable {
            if let Some(route) = self.table.get(dst) {
                if route.valid && route.next_hop == from {
                    self.table.invalidate(dst);
                    propagate.push((dst, seq));
                }
            }
        }
        let _ = now;
        self.originate_rerr(api, propagate);
    }

    fn link_broken(&mut self, api: &mut NodeApi<'_>, neighbour: NodeId) {
        self.neighbours.remove(&neighbour);
        let broken = self.table.invalidate_via(neighbour);
        self.originate_rerr(api, broken);
    }

    fn tick(&mut self, api: &mut NodeApi<'_>) {
        let now = api.now();
        // Neighbour timeout.
        let deadline = self.config.hello_interval * self.config.allowed_hello_loss;
        // Sort every batch collected from a HashMap before acting on it:
        // iteration order is per-process random, and link_broken /
        // start_discovery / drop_packet all have observable effects.
        let mut stale: Vec<NodeId> = self
            .neighbours
            .iter()
            .filter(|(_, &last)| now.saturating_since(last) > deadline)
            .map(|(&n, _)| n)
            .collect();
        stale.sort_by_key(|n| n.0);
        for n in stale {
            self.link_broken(api, n);
        }
        // RREQ cache purge.
        self.seen_rreq.retain(|_, &mut exp| exp > now);
        // Table purge.
        self.table.purge(now, Duration::from_secs(10));
        // Discovery retries / expiry.
        let mut due: Vec<NodeId> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(&d, _)| d)
            .collect();
        due.sort_by_key(|d| d.0);
        for dst in due {
            enum Action {
                GiveUp,
                Retry { ttl: u8, wait: Duration },
            }
            let config = self.config;
            let action = {
                let p = self.pending.get_mut(&dst).expect("pending entry");
                if self.config.expanding_ring && p.ttl < self.config.net_diameter {
                    // Widen the ring; failures below full radius do not
                    // count against RREQ_RETRIES (RFC 3561 §6.4).
                    // A zero increment must still make progress, or an
                    // unreachable destination would be probed forever
                    // without ever consuming RREQ_RETRIES.
                    let step = self.config.ttl_increment.max(1);
                    let next = if p.ttl >= self.config.ttl_threshold {
                        self.config.net_diameter
                    } else {
                        p.ttl.saturating_add(step)
                    };
                    p.ttl = next;
                    Action::Retry {
                        ttl: next,
                        wait: self.config.ring_traversal_time(next),
                    }
                } else {
                    p.retries += 1;
                    if p.retries > self.config.max_discovery_retries {
                        Action::GiveUp
                    } else {
                        // Binary exponential backoff on the wait.
                        let base = if config.expanding_ring {
                            config.ring_traversal_time(p.ttl)
                        } else {
                            config.discovery_timeout
                        };
                        let wait = base * 2u32.pow(p.retries.min(4));
                        Action::Retry { ttl: p.ttl, wait }
                    }
                }
            };
            match action {
                Action::GiveUp => {
                    self.discoveries_failed += 1;
                    api.note_route_event(dst, RouteEventKind::DiscoveryFailure);
                    if let Some(p) = self.pending.remove(&dst) {
                        for (packet, _) in p.queued {
                            api.drop_packet(packet, DropReason::DiscoveryFailed);
                        }
                    }
                }
                Action::Retry { ttl, wait } => {
                    self.discovery_retries += 1;
                    api.note_route_event(dst, RouteEventKind::DiscoveryRetry);
                    if let Some(p) = self.pending.get_mut(&dst) {
                        p.deadline = now + wait;
                    }
                    self.start_discovery(api, dst, false, ttl);
                }
            }
        }
        // Queued-data expiry.
        let max_q = self.config.max_queue_time;
        let mut queued_dsts: Vec<NodeId> = self.pending.keys().copied().collect();
        queued_dsts.sort_by_key(|d| d.0);
        for dst in queued_dsts {
            let p = self.pending.get_mut(&dst).expect("pending entry");
            let mut kept = VecDeque::with_capacity(p.queued.len());
            for (packet, queued_at) in p.queued.drain(..) {
                if now.saturating_since(queued_at) <= max_q {
                    kept.push_back((packet, queued_at));
                } else {
                    api.drop_packet(packet, DropReason::QueueTimeout);
                }
            }
            p.queued = kept;
        }
    }
}

/// Serializer for AODV's in-flight control payloads (RREQ, RREP, RERR,
/// HELLO). Tag bytes are part of the checkpoint format and fixed forever.
#[derive(Debug, Clone, Copy, Default)]
pub struct AodvCodec;

const CTRL_RREQ: u8 = 1;
const CTRL_RREP: u8 = 2;
const CTRL_RERR: u8 = 3;
const CTRL_HELLO: u8 = 4;

impl ControlCodec for AodvCodec {
    fn encode(&self, blob: &ControlBlob, w: &mut WireWriter) -> Result<(), WireError> {
        if let Some(m) = blob.downcast_ref::<Rreq>() {
            w.put_u8(CTRL_RREQ);
            w.put_u32(m.rreq_id);
            write_node_id(w, m.dst);
            match m.dst_seq {
                None => w.put_bool(false),
                Some(s) => {
                    w.put_bool(true);
                    w.put_u32(s);
                }
            }
            write_node_id(w, m.origin);
            w.put_u32(m.origin_seq);
            w.put_u32(m.hop_count);
        } else if let Some(m) = blob.downcast_ref::<Rrep>() {
            w.put_u8(CTRL_RREP);
            write_node_id(w, m.dst);
            w.put_u32(m.dst_seq);
            write_node_id(w, m.origin);
            w.put_u32(m.hop_count);
            write_duration(w, m.lifetime);
        } else if let Some(m) = blob.downcast_ref::<Rerr>() {
            w.put_u8(CTRL_RERR);
            w.put_usize(m.unreachable.len());
            for &(dst, seq) in &m.unreachable {
                write_node_id(w, dst);
                w.put_u32(seq);
            }
        } else if let Some(m) = blob.downcast_ref::<Hello>() {
            w.put_u8(CTRL_HELLO);
            w.put_u32(m.seq);
        } else {
            return Err(WireError::Malformed {
                what: "non-AODV control payload",
                value: 0,
            });
        }
        Ok(())
    }

    fn decode(&self, r: &mut WireReader<'_>) -> Result<ControlBlob, WireError> {
        Ok(match r.get_u8()? {
            CTRL_RREQ => std::sync::Arc::new(Rreq {
                rreq_id: r.get_u32()?,
                dst: read_node_id(r)?,
                dst_seq: if r.get_bool()? {
                    Some(r.get_u32()?)
                } else {
                    None
                },
                origin: read_node_id(r)?,
                origin_seq: r.get_u32()?,
                hop_count: r.get_u32()?,
            }),
            CTRL_RREP => std::sync::Arc::new(Rrep {
                dst: read_node_id(r)?,
                dst_seq: r.get_u32()?,
                origin: read_node_id(r)?,
                hop_count: r.get_u32()?,
                lifetime: read_duration(r)?,
            }),
            CTRL_RERR => {
                let n = r.get_usize()?;
                let mut unreachable = Vec::with_capacity(n);
                for _ in 0..n {
                    let dst = read_node_id(r)?;
                    let seq = r.get_u32()?;
                    unreachable.push((dst, seq));
                }
                std::sync::Arc::new(Rerr { unreachable })
            }
            CTRL_HELLO => std::sync::Arc::new(Hello { seq: r.get_u32()? }),
            tag => {
                return Err(WireError::Malformed {
                    what: "aodv control tag",
                    value: u64::from(tag),
                })
            }
        })
    }
}

impl RoutingProtocol for Aodv {
    fn name(&self) -> &'static str {
        "aodv"
    }

    fn start(&mut self, api: &mut NodeApi<'_>) {
        // Jittered periodic timers.
        let jitter = Duration::from_millis(api.rng().gen_range(0..200));
        api.schedule(self.config.hello_interval / 2 + jitter, TOKEN_HELLO);
        api.schedule(TICK + jitter, TOKEN_TICK);
    }

    fn route_output(&mut self, api: &mut NodeApi<'_>, packet: Packet) {
        let now = api.now();
        let dst = packet.dst;
        if dst.is_broadcast() {
            api.send(packet, NodeId::BROADCAST);
            return;
        }
        if self.table.lookup(dst, now).is_some() {
            self.forward_data(api, packet);
            return;
        }
        // Buffer and discover.
        let fresh = !self.pending.contains_key(&dst);
        let ttl = self.initial_ttl();
        let deadline = now + self.discovery_wait(ttl);
        let entry = self.pending.entry(dst).or_insert_with(|| PendingDiscovery {
            retries: 0,
            deadline,
            ttl,
            queued: VecDeque::new(),
        });
        entry.queued.push_back((packet, now));
        if fresh {
            self.discoveries_started += 1;
            api.note_route_event(dst, RouteEventKind::DiscoveryStart);
            self.start_discovery(api, dst, true, ttl);
        }
    }

    fn handle_received(&mut self, api: &mut NodeApi<'_>, mut packet: Packet, from: NodeId) {
        if let Some(rreq) = packet.body.as_control::<Rreq>() {
            let rreq = rreq.clone();
            self.handle_rreq(api, &packet, &rreq, from);
            return;
        }
        if let Some(rrep) = packet.body.as_control::<Rrep>() {
            let rrep = rrep.clone();
            self.handle_rrep(api, &rrep, from);
            return;
        }
        if let Some(rerr) = packet.body.as_control::<Rerr>() {
            let rerr = rerr.clone();
            self.handle_rerr(api, &rerr, from);
            return;
        }
        if let Some(hello) = packet.body.as_control::<Hello>() {
            let seq = hello.seq;
            self.touch_neighbour(api, from, Some(seq));
            return;
        }
        // Data.
        self.touch_neighbour(api, from, None);
        if packet.dst == api.id() {
            api.deliver_to_app(packet);
            return;
        }
        if packet.ttl <= 1 {
            api.drop_packet(packet, DropReason::TtlExpired);
            return;
        }
        packet.ttl -= 1;
        // Keep the route to the source fresh too (RFC 3561 §6.2).
        if packet.src != api.id() {
            self.table
                .refresh(packet.src, api.now() + self.config.active_route_timeout);
        }
        self.forward_data(api, packet);
    }

    fn handle_timer(&mut self, api: &mut NodeApi<'_>, token: u64) {
        match token {
            TOKEN_HELLO => {
                self.seqno = self.seqno.wrapping_add(1);
                let hello = Hello { seq: self.seqno };
                let packet = Packet::control(api.id(), NodeId::BROADCAST, HELLO_SIZE, hello);
                api.send(packet, NodeId::BROADCAST);
                let jitter = Duration::from_millis(api.rng().gen_range(0..100));
                api.schedule(
                    self.config.hello_interval - Duration::from_millis(50) + jitter,
                    TOKEN_HELLO,
                );
            }
            TOKEN_TICK => {
                self.tick(api);
                api.schedule(TICK, TOKEN_TICK);
            }
            _ => {}
        }
    }

    fn tx_failed(&mut self, api: &mut NodeApi<'_>, packet: Packet, next_hop: NodeId) {
        self.link_broken(api, next_hop);
        // If we originated the packet, try to rediscover rather than lose it.
        if packet.is_data() && packet.src == api.id() {
            self.route_output(api, packet);
        } else if packet.is_data() {
            api.drop_packet(packet, DropReason::RetryLimit);
        }
    }

    fn on_crash(&mut self, api: &mut NodeApi<'_>) {
        // Data buffered behind in-progress route discoveries dies with the
        // node; each packet must reach a terminal fate or the conservation
        // ledger would report it outstanding forever. Drop in destination
        // order — HashMap iteration order would leak into the event stream
        // and break bit-identical replay.
        let mut dsts: Vec<NodeId> = self.pending.keys().copied().collect();
        dsts.sort_by_key(|d| d.0);
        for dst in dsts {
            if let Some(p) = self.pending.remove(&dst) {
                for (packet, _) in p.queued {
                    api.drop_packet(packet, DropReason::NodeDown);
                }
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn telemetry(&self) -> RoutingTelemetry {
        RoutingTelemetry {
            route_table_size: self.table.len() as u64,
            neighbours: self.neighbours.len() as u64,
            discoveries_started: self.discoveries_started,
            discovery_retries: self.discovery_retries,
            discoveries_succeeded: self.discoveries_succeeded,
            discoveries_failed: self.discoveries_failed,
            mpr_set_size: 0,
        }
    }

    fn capture_state(&self, w: &mut WireWriter) -> Result<(), WireError> {
        self.table.capture(w);
        w.put_u32(self.seqno);
        w.put_u32(self.rreq_id);
        let mut seen: Vec<(NodeId, u32)> = self.seen_rreq.keys().copied().collect();
        seen.sort_by_key(|&(n, id)| (n.0, id));
        w.put_usize(seen.len());
        for key in seen {
            write_node_id(w, key.0);
            w.put_u32(key.1);
            write_time(w, self.seen_rreq[&key]);
        }
        let mut neigh: Vec<NodeId> = self.neighbours.keys().copied().collect();
        neigh.sort_by_key(|n| n.0);
        w.put_usize(neigh.len());
        for n in neigh {
            write_node_id(w, n);
            write_time(w, self.neighbours[&n]);
        }
        let mut dsts: Vec<NodeId> = self.pending.keys().copied().collect();
        dsts.sort_by_key(|d| d.0);
        w.put_usize(dsts.len());
        for dst in dsts {
            let p = &self.pending[&dst];
            write_node_id(w, dst);
            w.put_u32(p.retries);
            write_time(w, p.deadline);
            w.put_u8(p.ttl);
            w.put_usize(p.queued.len());
            for (packet, queued_at) in &p.queued {
                // Only data packets are ever buffered behind a discovery.
                write_packet(w, packet, &DataOnlyCodec)?;
                write_time(w, *queued_at);
            }
        }
        for v in [
            self.discoveries_started,
            self.discovery_retries,
            self.discoveries_succeeded,
            self.discoveries_failed,
        ] {
            w.put_u64(v);
        }
        Ok(())
    }

    fn restore_state(&mut self, r: &mut WireReader<'_>) -> Result<(), WireError> {
        self.table.restore(r)?;
        self.seqno = r.get_u32()?;
        self.rreq_id = r.get_u32()?;
        self.seen_rreq.clear();
        let n = r.get_usize()?;
        for _ in 0..n {
            let node = read_node_id(r)?;
            let id = r.get_u32()?;
            let expires = read_time(r)?;
            self.seen_rreq.insert((node, id), expires);
        }
        self.neighbours.clear();
        let n = r.get_usize()?;
        for _ in 0..n {
            let node = read_node_id(r)?;
            let heard = read_time(r)?;
            self.neighbours.insert(node, heard);
        }
        self.pending.clear();
        let n = r.get_usize()?;
        for _ in 0..n {
            let dst = read_node_id(r)?;
            let retries = r.get_u32()?;
            let deadline = read_time(r)?;
            let ttl = r.get_u8()?;
            let qn = r.get_usize()?;
            let mut queued = VecDeque::with_capacity(qn);
            for _ in 0..qn {
                let packet = read_packet(r, &DataOnlyCodec)?;
                let queued_at = read_time(r)?;
                queued.push_back((packet, queued_at));
            }
            self.pending.insert(
                dst,
                PendingDiscovery {
                    retries,
                    deadline,
                    ttl,
                    queued,
                },
            );
        }
        self.discoveries_started = r.get_u64()?;
        self.discovery_retries = r.get_u64()?;
        self.discoveries_succeeded = r.get_u64()?;
        self.discoveries_failed = r.get_u64()?;
        Ok(())
    }

    fn control_codec(&self) -> Option<Box<dyn ControlCodec>> {
        Some(Box::new(AodvCodec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_line, run_ring};

    #[test]
    fn name() {
        assert_eq!(Aodv::new().name(), "aodv");
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        crate::testutil::assert_snapshot_round_trip(4, |_| Box::new(Aodv::new()), 8.0, 7);
    }

    #[test]
    fn codec_round_trips_every_control_message() {
        let codec = AodvCodec;
        let blobs: Vec<ControlBlob> = vec![
            std::sync::Arc::new(Rreq {
                rreq_id: 7,
                dst: NodeId(3),
                dst_seq: Some(9),
                origin: NodeId(1),
                origin_seq: 4,
                hop_count: 2,
            }),
            std::sync::Arc::new(Rreq {
                rreq_id: 8,
                dst: NodeId(3),
                dst_seq: None,
                origin: NodeId(1),
                origin_seq: 4,
                hop_count: 0,
            }),
            std::sync::Arc::new(Rrep {
                dst: NodeId(3),
                dst_seq: 10,
                origin: NodeId(1),
                hop_count: 2,
                lifetime: Duration::from_secs(3),
            }),
            std::sync::Arc::new(Rerr {
                unreachable: vec![(NodeId(5), 11), (NodeId(6), 12)],
            }),
            std::sync::Arc::new(Hello { seq: 42 }),
        ];
        for blob in blobs {
            let mut w = WireWriter::new();
            codec.encode(&blob, &mut w).expect("encode");
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            let decoded = codec.decode(&mut r).expect("decode");
            r.finish().expect("whole stream consumed");
            let mut w2 = WireWriter::new();
            codec.encode(&decoded, &mut w2).expect("re-encode");
            assert_eq!(bytes, w2.into_bytes(), "codec round trip not stable");
        }
    }

    #[test]
    fn codec_rejects_foreign_payload_and_bad_tag() {
        let codec = AodvCodec;
        let foreign: ControlBlob = std::sync::Arc::new(42u32);
        assert!(matches!(
            codec.encode(&foreign, &mut WireWriter::new()),
            Err(WireError::Malformed { .. })
        ));
        let mut r = WireReader::new(&[0xEE]);
        assert!(matches!(
            codec.decode(&mut r),
            Err(WireError::Malformed {
                what: "aodv control tag",
                ..
            })
        ));
    }

    #[test]
    fn single_hop_delivery() {
        let (log, sim) = run_line(2, 200.0, |_| Box::new(Aodv::new()), 0, 1, 10, 10.0, 1);
        assert_eq!(log.borrow().received.len(), 10);
        // Control traffic was exchanged (hellos + discovery).
        assert!(sim.node_stats(0).control_sent > 0);
    }

    #[test]
    fn multi_hop_discovery_and_delivery() {
        // 5 nodes at 200 m: 0 → 4 needs 4 hops.
        let (log, _sim) = run_line(5, 200.0, |_| Box::new(Aodv::new()), 0, 4, 10, 15.0, 2);
        let got = log.borrow().received.len();
        assert!(
            got >= 9,
            "AODV should deliver nearly all packets, got {got}/10"
        );
    }

    #[test]
    fn delivery_on_ring_topology() {
        // Paper-like: 30 nodes on a 3000 m circuit; sender 5 → receiver 0.
        let (log, _sim) = run_ring(30, 3000.0, |_| Box::new(Aodv::new()), 5, 0, 10, 20.0, 3);
        let got = log.borrow().received.len();
        assert!(got >= 8, "ring delivery too low: {got}/10");
    }

    #[test]
    fn unreachable_destination_is_dropped_after_retries() {
        // Two partitions: nodes 0-1 at x=0,200; node 2 at x=5000.
        let mobility =
            cavenet_net::StaticMobility::new(vec![(0.0, 0.0), (200.0, 0.0), (5000.0, 0.0)]);
        let (log, _sim) = crate::testutil::run_with_mobility(
            mobility,
            3,
            |_| Box::new(Aodv::new()),
            0,
            2,
            5,
            15.0,
            4,
        );
        assert_eq!(log.borrow().received.len(), 0);
    }

    #[test]
    fn first_packet_latency_includes_discovery() {
        let (log, _sim) = run_line(4, 200.0, |_| Box::new(Aodv::new()), 0, 3, 5, 15.0, 5);
        let log = log.borrow();
        assert!(!log.received.is_empty());
        let (first_seq, first_at) = log.received[0];
        assert_eq!(first_seq, 0);
        // Source starts at 0.5 s; discovery adds latency but below a second
        // on a quiet 3-hop chain.
        let latency = first_at.as_secs_f64() - 0.5;
        assert!(
            latency > 0.0005,
            "discovery latency expected, got {latency}"
        );
        assert!(
            latency < 2.0,
            "discovery should finish quickly, got {latency}"
        );
    }

    #[test]
    fn routes_have_correct_hop_counts() {
        use cavenet_net::{ScenarioConfig, Simulator, StaticMobility};
        use std::cell::RefCell;
        use std::rc::Rc;

        // Capture the AODV instance state via a shared handle is not
        // possible post-build; instead verify behaviourally: node 0 learns a
        // route to node 2 (2 hops) only after traffic, never before.
        let log = Rc::new(RefCell::new(crate::testutil::SinkLog::default()));
        let mut sim = Simulator::builder(ScenarioConfig::default())
            .nodes(3)
            .seed(6)
            .mobility(Box::new(StaticMobility::line(3, 200.0)))
            .routing_with(|_| Box::new(Aodv::new()))
            .app(0, Box::new(crate::testutil::TestSource::new(NodeId(2), 3)))
            .app(
                2,
                Box::new(crate::testutil::TestSink {
                    log: Rc::clone(&log),
                }),
            )
            .build();
        sim.run_until_secs(10.0);
        assert_eq!(log.borrow().received.len(), 3);
        // The middle node forwarded them.
        assert_eq!(sim.node_stats(1).data_forwarded, 3);
    }

    #[test]
    fn hello_messages_flow_periodically() {
        let (_, sim) = run_line(2, 100.0, |_| Box::new(Aodv::new()), 0, 1, 0, 10.0, 7);
        // ≈10 s of hellos at 1/s from each node.
        let ctrl = sim.node_stats(0).control_sent;
        assert!((8..=20).contains(&ctrl), "expected ≈10 hellos, got {ctrl}");
    }

    #[test]
    fn default_config_matches_table1() {
        let c = AodvConfig::default();
        assert_eq!(c.hello_interval, Duration::from_secs(1));
    }
}

#[cfg(test)]
mod ring_search_tests {
    use super::*;
    use crate::testutil::run_line;

    fn ring_aodv() -> Aodv {
        Aodv::with_config(AodvConfig {
            expanding_ring: true,
            ..AodvConfig::default()
        })
    }

    #[test]
    fn expanding_ring_still_delivers_multi_hop() {
        let (log, _) = run_line(5, 200.0, |_| Box::new(ring_aodv()), 0, 4, 10, 20.0, 2);
        let got = log.borrow().received.len();
        assert!(got >= 9, "ring search should deliver, got {got}/10");
    }

    #[test]
    fn expanding_ring_reduces_rreq_overhead_for_near_destinations() {
        // Destination one hop away: the TTL-1 probe suffices, so distant
        // nodes never see (or re-flood) the RREQ. Compare third-node
        // control forwarding between the two modes on a 5-node chain where
        // only nodes 0 and 1 talk.
        let (_, ring_sim) = run_line(5, 200.0, |_| Box::new(ring_aodv()), 0, 1, 5, 10.0, 3);
        let (_, flood_sim) = run_line(5, 200.0, |_| Box::new(Aodv::new()), 0, 1, 5, 10.0, 3);
        // Count control packets sent by the FAR nodes (3, 4) — hello traffic
        // is identical, so any extra is RREQ re-flooding.
        let far_ring: u64 = (3..5).map(|i| ring_sim.node_stats(i).control_sent).sum();
        let far_flood: u64 = (3..5).map(|i| flood_sim.node_stats(i).control_sent).sum();
        assert!(
            far_ring <= far_flood,
            "ring search should not increase far-node control traffic: {far_ring} vs {far_flood}"
        );
    }

    #[test]
    fn expanding_ring_widens_until_distant_destination_found() {
        // 4 hops away: needs several ring expansions but must still succeed.
        let (log, _) = run_line(5, 200.0, |_| Box::new(ring_aodv()), 0, 4, 3, 20.0, 4);
        assert!(!log.borrow().received.is_empty());
    }

    #[test]
    fn ring_traversal_time_grows_with_ttl() {
        let c = AodvConfig::default();
        assert!(c.ring_traversal_time(1) < c.ring_traversal_time(7));
        assert_eq!(c.ring_traversal_time(1), Duration::from_millis(240));
    }

    /// A 0-1-2-3 line (200 m spacing) whose far end (node 3) teleports out
    /// of range during `[gone_from, back_at)`.
    struct VanishingTail {
        gone_from: SimTime,
        back_at: SimTime,
    }

    impl cavenet_net::MobilityModel for VanishingTail {
        fn position(&self, index: usize, t: SimTime) -> (f64, f64) {
            if index == 3 && t >= self.gone_from && t < self.back_at {
                (1.0e6, 1.0e6)
            } else {
                (index as f64 * 200.0, 0.0)
            }
        }

        fn node_count(&self) -> usize {
            4
        }
    }

    fn vanishing_tail_sim(
        until_secs: f64,
    ) -> (
        std::rc::Rc<std::cell::RefCell<crate::testutil::SinkLog>>,
        cavenet_net::Simulator,
    ) {
        use crate::testutil::{SinkLog, TestSink, TestSource};
        use cavenet_net::{ScenarioConfig, Simulator};

        // Routes live 120 s, so within a 16 s run only a propagated RERR
        // can explain an invalidated entry at the source.
        let cfg = AodvConfig {
            active_route_timeout: Duration::from_secs(120),
            ..AodvConfig::default()
        };
        let log = std::rc::Rc::new(std::cell::RefCell::new(SinkLog::default()));
        let mut sim = Simulator::builder(ScenarioConfig::default())
            .nodes(4)
            .seed(1)
            .mobility(Box::new(VanishingTail {
                gone_from: SimTime::from_secs(4),
                back_at: SimTime::from_secs(10),
            }))
            .routing_with(move |_| Box::new(Aodv::with_config(cfg)))
            .app(0, Box::new(TestSource::new(NodeId(3), 100)))
            .app(
                3,
                Box::new(TestSink {
                    log: std::rc::Rc::clone(&log),
                }),
            )
            .build();
        sim.run_until_secs(until_secs);
        (log, sim)
    }

    fn aodv_of(sim: &cavenet_net::Simulator, node: usize) -> &Aodv {
        sim.routing(node)
            .expect("routing attached")
            .as_any()
            .expect("AODV opts into downcasting")
            .downcast_ref::<Aodv>()
            .expect("protocol is AODV")
    }

    #[test]
    fn rerr_propagates_upstream_and_invalidates_the_source_route() {
        // Node 3 vanishes at 4 s. Node 2's MAC failure raises a RERR that
        // must travel 2 -> 1 -> 0; by 8 s the *source* must hold an
        // invalidated (not expired) entry with a bumped sequence number.
        let (log, sim) = vanishing_tail_sim(8.0);
        let delivered = log.borrow().received.len();
        assert!(
            delivered >= 10,
            "3-hop route must work before the break, got {delivered}"
        );
        let entry = *aodv_of(&sim, 0)
            .table()
            .get(NodeId(3))
            .expect("entry retained for its sequence number");
        assert!(!entry.valid, "RERR did not reach the source: {entry:?}");
        assert!(
            entry.expires > sim.now(),
            "route must be invalid by RERR, not by expiry: {entry:?}"
        );
    }

    #[test]
    fn rediscovery_after_rerr_requires_fresher_sequence_number() {
        // Continue past the break: node 3 returns at 10 s. The new RREQ
        // carries the bumped sequence number as its freshness requirement,
        // so the rediscovered route must be strictly fresher than the
        // invalidated one (RFC 3561 destination-sequence rules).
        let (log, mut sim) = vanishing_tail_sim(8.0);
        let before = log.borrow().received.len();
        let bumped = aodv_of(&sim, 0)
            .table()
            .get(NodeId(3))
            .expect("invalidated entry")
            .seqno;
        sim.run_until_secs(16.0);
        let after = log.borrow().received.len();
        assert!(
            after > before,
            "deliveries must resume after the destination returns ({before} -> {after})"
        );
        let entry = *aodv_of(&sim, 0)
            .table()
            .get(NodeId(3))
            .expect("route rediscovered");
        assert!(
            entry.is_usable(sim.now()),
            "route must be usable: {entry:?}"
        );
        assert!(
            seq_newer(entry.seqno, bumped),
            "rediscovered seqno {} must be strictly newer than the RERR bump {bumped}",
            entry.seqno
        );
    }

    /// A 0-1-2-3 line whose only relay towards the source (node 1) crashes
    /// at 3 s and recovers at 8 s via the fault-injection subsystem.
    fn crashed_relay_sim(
        until_secs: f64,
    ) -> (
        std::rc::Rc<std::cell::RefCell<crate::testutil::SinkLog>>,
        cavenet_net::Simulator,
    ) {
        use crate::testutil::{SinkLog, TestSink, TestSource};
        use cavenet_net::{FaultPlan, ScenarioConfig, Simulator, StaticMobility};

        // Long route lifetime: only a RERR can explain invalidation.
        let cfg = AodvConfig {
            active_route_timeout: Duration::from_secs(120),
            ..AodvConfig::default()
        };
        let log = std::rc::Rc::new(std::cell::RefCell::new(SinkLog::default()));
        let mut sim = Simulator::builder(ScenarioConfig::default())
            .nodes(4)
            .seed(1)
            .mobility(Box::new(StaticMobility::line(4, 200.0)))
            .fault_plan(
                FaultPlan::new()
                    .crash(SimTime::from_secs(3), 1)
                    .recover(SimTime::from_secs(8), 1),
            )
            .routing_with(move |_| Box::new(Aodv::with_config(cfg)))
            .app(0, Box::new(TestSource::new(NodeId(3), 100)))
            .app(
                3,
                Box::new(TestSink {
                    log: std::rc::Rc::clone(&log),
                }),
            )
            .build();
        sim.run_until_secs(until_secs);
        (log, sim)
    }

    #[test]
    fn relay_crash_raises_rerr_at_the_source() {
        // Node 1 is node 0's only next hop towards 3. After the crash the
        // source's MAC retries fail, link_broken fires, and the RERR path
        // must leave an invalidated (not expired) entry at the source.
        let (log, sim) = crashed_relay_sim(7.0);
        let delivered = log.borrow().received.len();
        assert!(
            delivered >= 8,
            "route must work before the crash, got {delivered}"
        );
        assert!(
            log.borrow()
                .received
                .iter()
                .all(|&(_, at)| at < SimTime::from_secs(4)),
            "no deliveries while the only relay is down"
        );
        let entry = *aodv_of(&sim, 0)
            .table()
            .get(NodeId(3))
            .expect("entry retained for its sequence number");
        assert!(!entry.valid, "crash must invalidate via RERR: {entry:?}");
        assert!(
            entry.expires > sim.now(),
            "route must be invalid by RERR, not by expiry: {entry:?}"
        );
    }

    #[test]
    fn recovery_repairs_the_route_and_delivery_resumes() {
        // Continue past the recovery at 8 s: a fresh discovery through the
        // cold-started relay must re-establish the route end to end.
        let (log, mut sim) = crashed_relay_sim(7.0);
        let before = log.borrow().received.len();
        sim.run_until_secs(20.0);
        let after = log.borrow().received.len();
        assert!(
            after > before,
            "deliveries must resume after the relay recovers ({before} -> {after})"
        );
        assert!(
            log.borrow()
                .received
                .iter()
                .any(|&(_, at)| at > SimTime::from_secs(8)),
            "post-recovery deliveries must exist"
        );
        let entry = *aodv_of(&sim, 0)
            .table()
            .get(NodeId(3))
            .expect("route repaired");
        assert!(
            entry.is_usable(sim.now()),
            "route must be usable: {entry:?}"
        );
    }
}
