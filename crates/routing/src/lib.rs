//! # cavenet-routing — MANET routing protocols, implemented from scratch
//!
//! The CAVENET paper's contribution on the protocol side is the
//! implementation and comparison of three MANET routing protocols on
//! vehicular mobility (paper §III-B):
//!
//! * **AODV** (RFC 3561) — reactive: on-demand route discovery with
//!   RREQ flooding, reverse-path RREP, sequence-numbered routes, HELLO-based
//!   neighbour sensing and RERR link-failure reporting ([`Aodv`]);
//! * **OLSR** (RFC 3626) — proactive: periodic HELLO link sensing,
//!   multipoint-relay (MPR) selection, TC dissemination through MPRs and
//!   shortest-path route computation, plus the olsrd **ETX/LQ extension**
//!   the paper describes (§III-B-1) as an optional link metric ([`Olsr`]);
//! * **DYMO** (draft-ietf-manet-dymo) — reactive successor of AODV with
//!   **path accumulation**: every node on a discovery path learns routes to
//!   all intermediate hops, and link breakage floods RERRs ([`Dymo`]).
//!
//! Two baselines complete the crate: a TTL-scoped [`Flooding`] protocol and
//! [`Dsdv`] — the classical proactive distance-vector protocol the paper
//! names as AODV's ancestor — plus the shared sequence-numbered
//! [`RouteTable`]. All protocols implement
//! [`cavenet_net::RoutingProtocol`] and run unmodified under the
//! deterministic simulator.
//!
//! ```
//! use cavenet_net::{Simulator, ScenarioConfig, StaticMobility};
//! use cavenet_routing::Aodv;
//!
//! let mut sim = Simulator::builder(ScenarioConfig::default())
//!     .nodes(4)
//!     .mobility(Box::new(StaticMobility::line(4, 200.0)))
//!     .routing_with(|_| Box::new(Aodv::new()))
//!     .build();
//! sim.run_until_secs(2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aodv;
mod dsdv;
mod dymo;
mod flooding;
mod olsr;
mod table;

#[cfg(test)]
pub(crate) mod testutil;

pub use aodv::{Aodv, AodvCodec, AodvConfig};
pub use dsdv::{Dsdv, DsdvCodec, DsdvConfig};
pub use dymo::{Dymo, DymoCodec, DymoConfig};
pub use flooding::Flooding;
pub use olsr::{LinkMetric, Olsr, OlsrCodec, OlsrConfig};
pub use table::{RouteEntry, RouteTable};
