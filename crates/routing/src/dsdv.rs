//! Destination-Sequenced Distance Vector routing (Perkins & Bhagwat, 1994).
//!
//! The paper introduces AODV as "an improvement of DSDV to on-demand
//! scheme" (§III-B-2); DSDV itself is the classical *proactive*
//! distance-vector protocol: every node periodically broadcasts its full
//! routing table, entries carry destination-originated sequence numbers
//! (even = reachable, odd = broken) to guarantee loop freedom, and link
//! breaks trigger immediate advertisements of ∞-metric routes.
//!
//! Implemented here as a baseline to compare the paper's protocols against
//! their common ancestor.

use std::collections::HashMap;
use std::time::Duration;

use cavenet_net::snapshot::{read_node_id, read_time, write_node_id, write_time};
use cavenet_net::{
    ControlBlob, ControlCodec, DropReason, NodeApi, NodeId, Packet, RoutingProtocol,
    RoutingTelemetry, SimTime, WireError, WireReader, WireWriter,
};

/// DSDV tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DsdvConfig {
    /// Full-dump broadcast interval.
    pub update_interval: Duration,
    /// Route entries older than this are dropped (3 × update by default).
    pub route_lifetime: Duration,
    /// Metric treated as unreachable (∞).
    pub infinity: u32,
}

impl Default for DsdvConfig {
    fn default() -> Self {
        DsdvConfig {
            update_interval: Duration::from_secs(2),
            route_lifetime: Duration::from_secs(6),
            infinity: 16,
        }
    }
}

/// One advertised route.
#[derive(Debug, Clone, Copy)]
struct Advertised {
    dst: NodeId,
    metric: u32,
    seqno: u32,
}

/// A full-dump update message (wire ≈ 8 + 12·entries bytes).
#[derive(Debug, Clone)]
struct Update {
    entries: Vec<Advertised>,
}

#[derive(Debug, Clone, Copy)]
struct DsdvRoute {
    next_hop: NodeId,
    metric: u32,
    seqno: u32,
    updated: SimTime,
}

const TOKEN_UPDATE: u64 = 1;
const TOKEN_TICK: u64 = 2;
const TICK: Duration = Duration::from_millis(500);

/// The DSDV routing protocol state for one node.
#[derive(Debug)]
pub struct Dsdv {
    config: DsdvConfig,
    routes: HashMap<NodeId, DsdvRoute>,
    own_seq: u32,
}

impl Default for Dsdv {
    fn default() -> Self {
        Self::new()
    }
}

impl Dsdv {
    /// DSDV with default configuration.
    pub fn new() -> Self {
        Self::with_config(DsdvConfig::default())
    }

    /// DSDV with explicit configuration.
    pub fn with_config(config: DsdvConfig) -> Self {
        Dsdv {
            config,
            routes: HashMap::new(),
            own_seq: 0,
        }
    }

    /// Number of usable (finite-metric) routes currently known.
    pub fn route_count(&self) -> usize {
        self.routes
            .values()
            .filter(|r| r.metric < self.config.infinity)
            .count()
    }

    fn broadcast_update(&mut self, api: &mut NodeApi<'_>) {
        // Our own entry advances by 2 (stays even = reachable).
        self.own_seq = self.own_seq.wrapping_add(2);
        let mut entries = vec![Advertised {
            dst: api.id(),
            metric: 0,
            seqno: self.own_seq,
        }];
        for (&dst, r) in &self.routes {
            if dst != api.id() {
                entries.push(Advertised {
                    dst,
                    metric: r.metric,
                    seqno: r.seqno,
                });
            }
        }
        entries.sort_by_key(|e| e.dst);
        let size = 8 + 12 * entries.len() as u32;
        let packet = Packet::control(api.id(), NodeId::BROADCAST, size, Update { entries });
        api.send(packet, NodeId::BROADCAST);
    }

    fn handle_update(&mut self, api: &mut NodeApi<'_>, update: &Update, from: NodeId) {
        let now = api.now();
        let me = api.id();
        let mut broke_something = false;
        // The sender itself is a 1-hop neighbour: its own entry covers this.
        for adv in &update.entries {
            if adv.dst == me {
                continue;
            }
            let metric = if adv.metric >= self.config.infinity {
                self.config.infinity
            } else {
                adv.metric + 1
            };
            let adopt = match self.routes.get(&adv.dst) {
                None => metric < self.config.infinity,
                Some(old) => {
                    let newer = seq32_newer(adv.seqno, old.seqno);
                    let same_and_better = adv.seqno == old.seqno && metric < old.metric;
                    // An ∞-metric advert from our own next hop invalidates.
                    let poison = old.next_hop == from && metric >= self.config.infinity;
                    newer || same_and_better || poison
                }
            };
            if adopt {
                let was_usable = self
                    .routes
                    .get(&adv.dst)
                    .is_some_and(|r| r.metric < self.config.infinity);
                if metric >= self.config.infinity && was_usable {
                    broke_something = true;
                }
                self.routes.insert(
                    adv.dst,
                    DsdvRoute {
                        next_hop: from,
                        metric,
                        seqno: adv.seqno,
                        updated: now,
                    },
                );
            }
        }
        if broke_something {
            // Triggered update propagates the breakage quickly.
            self.broadcast_update(api);
        }
    }

    fn lookup(&self, dst: NodeId) -> Option<NodeId> {
        self.routes
            .get(&dst)
            .filter(|r| r.metric < self.config.infinity)
            .map(|r| r.next_hop)
    }

    fn link_broken(&mut self, api: &mut NodeApi<'_>, neighbour: NodeId) {
        let now = api.now();
        let mut any = false;
        for r in self.routes.values_mut() {
            if r.next_hop == neighbour && r.metric < self.config.infinity {
                r.metric = self.config.infinity;
                // Odd sequence number marks a broken route; only the
                // destination can supersede it with a fresh even one.
                r.seqno = r.seqno.wrapping_add(1);
                r.updated = now;
                any = true;
            }
        }
        if any {
            self.broadcast_update(api);
        }
    }

    fn tick(&mut self, api: &mut NodeApi<'_>) {
        let now = api.now();
        let lifetime = self.config.route_lifetime;
        self.routes
            .retain(|_, r| now.saturating_since(r.updated) <= lifetime);
    }
}

/// 32-bit circular comparison, as for AODV.
fn seq32_newer(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) > 0
}

/// Serializer for DSDV's single in-flight control payload (the full-dump
/// update). The tag byte is part of the checkpoint format and fixed
/// forever.
#[derive(Debug, Clone, Copy, Default)]
pub struct DsdvCodec;

const CTRL_UPDATE: u8 = 1;

impl ControlCodec for DsdvCodec {
    fn encode(&self, blob: &ControlBlob, w: &mut WireWriter) -> Result<(), WireError> {
        let Some(m) = blob.downcast_ref::<Update>() else {
            return Err(WireError::Malformed {
                what: "non-DSDV control payload",
                value: 0,
            });
        };
        w.put_u8(CTRL_UPDATE);
        w.put_usize(m.entries.len());
        for adv in &m.entries {
            write_node_id(w, adv.dst);
            w.put_u32(adv.metric);
            w.put_u32(adv.seqno);
        }
        Ok(())
    }

    fn decode(&self, r: &mut WireReader<'_>) -> Result<ControlBlob, WireError> {
        match r.get_u8()? {
            CTRL_UPDATE => {
                let n = r.get_usize()?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(Advertised {
                        dst: read_node_id(r)?,
                        metric: r.get_u32()?,
                        seqno: r.get_u32()?,
                    });
                }
                Ok(std::sync::Arc::new(Update { entries }))
            }
            tag => Err(WireError::Malformed {
                what: "dsdv control tag",
                value: u64::from(tag),
            }),
        }
    }
}

impl RoutingProtocol for Dsdv {
    fn name(&self) -> &'static str {
        "dsdv"
    }

    fn start(&mut self, api: &mut NodeApi<'_>) {
        let jitter = Duration::from_millis(api.rng().gen_range(0..500));
        api.schedule(Duration::from_millis(100) + jitter, TOKEN_UPDATE);
        api.schedule(TICK + jitter, TOKEN_TICK);
    }

    fn route_output(&mut self, api: &mut NodeApi<'_>, packet: Packet) {
        if packet.dst.is_broadcast() {
            api.send(packet, NodeId::BROADCAST);
            return;
        }
        if let Some(nh) = self.lookup(packet.dst) {
            api.send(packet, nh);
        } else {
            // Proactive protocol: no route means drop.
            api.drop_packet(packet, DropReason::NoRoute);
        }
    }

    fn handle_received(&mut self, api: &mut NodeApi<'_>, mut packet: Packet, from: NodeId) {
        if let Some(update) = packet.body.as_control::<Update>() {
            let update = update.clone();
            self.handle_update(api, &update, from);
            return;
        }
        if packet.dst == api.id() {
            api.deliver_to_app(packet);
            return;
        }
        if packet.ttl <= 1 {
            api.drop_packet(packet, DropReason::TtlExpired);
            return;
        }
        packet.ttl -= 1;
        if let Some(nh) = self.lookup(packet.dst) {
            api.send(packet, nh);
        } else {
            api.drop_packet(packet, DropReason::NoRoute);
        }
    }

    fn handle_timer(&mut self, api: &mut NodeApi<'_>, token: u64) {
        match token {
            TOKEN_UPDATE => {
                self.broadcast_update(api);
                let jitter = Duration::from_millis(api.rng().gen_range(0..200));
                api.schedule(
                    self.config.update_interval - Duration::from_millis(100) + jitter,
                    TOKEN_UPDATE,
                );
            }
            TOKEN_TICK => {
                self.tick(api);
                api.schedule(TICK, TOKEN_TICK);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn telemetry(&self) -> RoutingTelemetry {
        RoutingTelemetry {
            route_table_size: self.routes.len() as u64,
            // DSDV's 1-hop entries double as its neighbour set.
            neighbours: self.routes.values().filter(|r| r.metric == 1).count() as u64,
            ..RoutingTelemetry::default()
        }
    }

    fn on_crash(&mut self, _api: &mut NodeApi<'_>) {
        // DSDV forwards or drops immediately (no discovery buffer), so
        // there is nothing to surrender; distance-vector state is discarded
        // or aged out per the RecoveryMode semantics.
    }

    fn tx_failed(&mut self, api: &mut NodeApi<'_>, packet: Packet, next_hop: NodeId) {
        self.link_broken(api, next_hop);
        if packet.is_data() {
            api.drop_packet(packet, DropReason::RetryLimit);
        }
    }

    fn capture_state(&self, w: &mut WireWriter) -> Result<(), WireError> {
        let mut dsts: Vec<NodeId> = self.routes.keys().copied().collect();
        dsts.sort_by_key(|d| d.0);
        w.put_usize(dsts.len());
        for dst in dsts {
            let r = &self.routes[&dst];
            write_node_id(w, dst);
            write_node_id(w, r.next_hop);
            w.put_u32(r.metric);
            w.put_u32(r.seqno);
            write_time(w, r.updated);
        }
        w.put_u32(self.own_seq);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut WireReader<'_>) -> Result<(), WireError> {
        self.routes.clear();
        let n = r.get_usize()?;
        for _ in 0..n {
            let dst = read_node_id(r)?;
            let route = DsdvRoute {
                next_hop: read_node_id(r)?,
                metric: r.get_u32()?,
                seqno: r.get_u32()?,
                updated: read_time(r)?,
            };
            self.routes.insert(dst, route);
        }
        self.own_seq = r.get_u32()?;
        Ok(())
    }

    fn control_codec(&self) -> Option<Box<dyn ControlCodec>> {
        Some(Box::new(DsdvCodec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_line, run_ring};

    #[test]
    fn name() {
        assert_eq!(Dsdv::new().name(), "dsdv");
    }

    #[test]
    fn seq_comparison() {
        assert!(seq32_newer(4, 2));
        assert!(!seq32_newer(2, 4));
        assert!(seq32_newer(0, u32::MAX - 1));
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        crate::testutil::assert_snapshot_round_trip(4, |_| Box::new(Dsdv::new()), 8.0, 7);
    }

    #[test]
    fn codec_round_trips_update_and_rejects_garbage() {
        let codec = DsdvCodec;
        let blob: ControlBlob = std::sync::Arc::new(Update {
            entries: vec![
                Advertised {
                    dst: NodeId(0),
                    metric: 0,
                    seqno: 8,
                },
                Advertised {
                    dst: NodeId(2),
                    metric: 3,
                    seqno: 5,
                },
            ],
        });
        let mut w = WireWriter::new();
        codec.encode(&blob, &mut w).expect("encode");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let decoded = codec.decode(&mut r).expect("decode");
        r.finish().expect("whole stream consumed");
        let mut w2 = WireWriter::new();
        codec.encode(&decoded, &mut w2).expect("re-encode");
        assert_eq!(bytes, w2.into_bytes(), "codec round trip not stable");

        let foreign: ControlBlob = std::sync::Arc::new("nope");
        assert!(matches!(
            codec.encode(&foreign, &mut WireWriter::new()),
            Err(WireError::Malformed { .. })
        ));
        let mut bad = WireReader::new(&[0x7F]);
        assert!(matches!(
            codec.decode(&mut bad),
            Err(WireError::Malformed {
                what: "dsdv control tag",
                ..
            })
        ));
    }

    #[test]
    fn single_hop_delivery_after_convergence() {
        let (log, _) = run_line(2, 200.0, |_| Box::new(Dsdv::new()), 0, 1, 30, 12.0, 1);
        let got = log.borrow().received.len();
        assert!(got >= 20, "DSDV single hop should deliver, got {got}/30");
    }

    #[test]
    fn multi_hop_delivery() {
        // Full dumps every 2 s: a 4-hop chain converges in ≈4 update
        // rounds.
        let (log, _) = run_line(5, 200.0, |_| Box::new(Dsdv::new()), 0, 4, 40, 30.0, 2);
        let got = log.borrow().received.len();
        assert!(got >= 15, "DSDV multi-hop delivery too low: {got}/40");
    }

    #[test]
    fn ring_delivery() {
        let (log, _) = run_ring(30, 3000.0, |_| Box::new(Dsdv::new()), 5, 0, 40, 40.0, 3);
        let got = log.borrow().received.len();
        assert!(got >= 10, "DSDV ring delivery too low: {got}/40");
    }

    #[test]
    fn partitioned_destination_not_delivered() {
        let mobility =
            cavenet_net::StaticMobility::new(vec![(0.0, 0.0), (200.0, 0.0), (5000.0, 0.0)]);
        let (log, _) = crate::testutil::run_with_mobility(
            mobility,
            3,
            |_| Box::new(Dsdv::new()),
            0,
            2,
            5,
            15.0,
            4,
        );
        assert_eq!(log.borrow().received.len(), 0);
    }

    #[test]
    fn periodic_updates_flow() {
        let (_, sim) = run_line(2, 100.0, |_| Box::new(Dsdv::new()), 0, 1, 0, 10.0, 5);
        // ≈1 update per 2 s per node, plus possible triggered ones.
        let ctrl = sim.node_stats(0).control_sent;
        assert!((4..=20).contains(&ctrl), "expected ≈5 updates, got {ctrl}");
    }

    #[test]
    fn aodv_descends_from_dsdv_with_less_overhead() {
        // The motivation for AODV (§III-B-2): create routes only when
        // needed. With a single short flow, AODV's control volume should
        // undercut DSDV's periodic full dumps on a larger network.
        let (_, dsdv) = run_line(8, 200.0, |_| Box::new(Dsdv::new()), 0, 1, 3, 20.0, 6);
        let (_, aodv) = run_line(8, 200.0, |_| Box::new(crate::Aodv::new()), 0, 1, 3, 20.0, 6);
        let dsdv_bytes: u64 = (0..8).map(|i| dsdv.node_stats(i).control_bytes_sent).sum();
        let aodv_bytes: u64 = (0..8).map(|i| aodv.node_stats(i).control_bytes_sent).sum();
        assert!(
            aodv_bytes < dsdv_bytes,
            "on-demand should beat full dumps: AODV {aodv_bytes} vs DSDV {dsdv_bytes}"
        );
    }
}
