//! Optimized Link State Routing (RFC 3626), with the olsrd ETX/LQ
//! extension the paper describes.
//!
//! OLSR is proactive: every node periodically broadcasts HELLO messages to
//! sense its one-hop links and learn its two-hop neighbourhood; from those
//! it elects **multipoint relays (MPRs)** — the minimal neighbour subset
//! covering all two-hop nodes. Only MPRs forward Topology Control (TC)
//! floods, "by this way, the amount of control traffic can be reduced"
//! (paper §III-B-1). TC messages advertise each node's MPR-selector set;
//! the union of HELLO-sensed links and TC-learned links feeds a
//! shortest-path computation.
//!
//! With [`LinkMetric::Etx`] the route computation minimizes the expected
//! transmission count `ETX(i) = 1/(NI(i)·LQI(i))` instead of the hop count,
//! where `NI` is the packet arrival rate we measure on a link and `LQI` is
//! the rate the neighbour reports back — exactly the olsrd LQ extension the
//! paper cites.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Duration;

use cavenet_net::snapshot::{read_node_id, read_time, write_node_id, write_time};
use cavenet_net::{
    ControlBlob, ControlCodec, DropReason, NodeApi, NodeId, Packet, RoutingProtocol,
    RoutingTelemetry, SimTime, WireError, WireReader, WireWriter,
};

/// Which link cost the route computation minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinkMetric {
    /// Minimum hop count (RFC 3626 baseline).
    #[default]
    Hops,
    /// Minimum sum of ETX = 1/(NI·LQI) (olsrd LQ extension).
    Etx,
}

/// OLSR tunables (Table 1: HELLO 1 s, TC 2 s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OlsrConfig {
    /// HELLO emission interval.
    pub hello_interval: Duration,
    /// TC emission interval.
    pub tc_interval: Duration,
    /// Link/neighbour hold time (3 × HELLO by default).
    pub neighb_hold: Duration,
    /// Topology hold time (3 × TC by default).
    pub top_hold: Duration,
    /// Link metric for route computation.
    pub metric: LinkMetric,
    /// Sliding window (in HELLO periods) for ETX link-quality estimation.
    pub lq_window: u32,
}

impl Default for OlsrConfig {
    fn default() -> Self {
        OlsrConfig {
            hello_interval: Duration::from_secs(1),
            tc_interval: Duration::from_secs(2),
            neighb_hold: Duration::from_secs(3),
            top_hold: Duration::from_secs(6),
            metric: LinkMetric::Hops,
            lq_window: 10,
        }
    }
}

/// One neighbour entry inside a HELLO.
#[derive(Debug, Clone, Copy)]
struct HelloEntry {
    addr: NodeId,
    /// The sender considers the link to `addr` symmetric.
    sym: bool,
    /// The sender has selected `addr` as an MPR.
    is_mpr: bool,
    /// The sender's measured arrival rate on the link to `addr` (for ETX).
    lq: f64,
}

/// HELLO message (wire ≈ 16 + 8·entries bytes).
#[derive(Debug, Clone)]
struct Hello {
    entries: Vec<HelloEntry>,
}

/// Topology Control message (wire ≈ 16 + 8·selectors bytes).
#[derive(Debug, Clone)]
struct Tc {
    origin: NodeId,
    seq: u32,
    ansn: u16,
    /// The origin's MPR-selector set with the origin's link quality toward
    /// each.
    selectors: Vec<(NodeId, f64)>,
}

const TOKEN_HELLO: u64 = 1;
const TOKEN_TC: u64 = 2;
const TOKEN_TICK: u64 = 3;
const TICK: Duration = Duration::from_millis(250);

#[derive(Debug, Clone)]
struct LinkInfo {
    heard_until: SimTime,
    sym_until: SimTime,
    /// Times we received a HELLO from this neighbour (ETX window).
    hello_times: VecDeque<SimTime>,
    /// Arrival rate the neighbour reports for packets *from us* (LQI).
    lqi: f64,
}

impl LinkInfo {
    fn new() -> Self {
        LinkInfo {
            heard_until: SimTime::ZERO,
            sym_until: SimTime::ZERO,
            hello_times: VecDeque::new(),
            lqi: 1.0,
        }
    }

    fn is_sym(&self, now: SimTime) -> bool {
        self.sym_until > now
    }

    fn is_heard(&self, now: SimTime) -> bool {
        self.heard_until > now
    }
}

/// The OLSR routing protocol state for one node.
#[derive(Debug)]
pub struct Olsr {
    config: OlsrConfig,
    links: HashMap<NodeId, LinkInfo>,
    /// (neighbour, two-hop node) → expiry.
    two_hop: HashMap<(NodeId, NodeId), SimTime>,
    mprs: HashSet<NodeId>,
    /// Neighbours that selected us as MPR → expiry.
    mpr_selectors: HashMap<NodeId, SimTime>,
    /// (destination, last hop) → (link quality, expiry).
    topology: HashMap<(NodeId, NodeId), (f64, SimTime)>,
    /// Highest ANSN seen per origin.
    origin_ansn: HashMap<NodeId, u16>,
    /// TC duplicate cache: (origin, seq) → expiry.
    seen_tc: HashMap<(NodeId, u32), SimTime>,
    /// Destination → (next hop, cost).
    routes: HashMap<NodeId, (NodeId, f64)>,
    tc_seq: u32,
    ansn: u16,
    last_selector_snapshot: Vec<NodeId>,
}

impl Default for Olsr {
    fn default() -> Self {
        Self::new()
    }
}

impl Olsr {
    /// OLSR with default configuration (hop-count metric).
    pub fn new() -> Self {
        Self::with_config(OlsrConfig::default())
    }

    /// OLSR minimizing ETX (the LQ extension).
    pub fn new_etx() -> Self {
        Self::with_config(OlsrConfig {
            metric: LinkMetric::Etx,
            ..OlsrConfig::default()
        })
    }

    /// OLSR with explicit configuration.
    pub fn with_config(config: OlsrConfig) -> Self {
        Olsr {
            config,
            links: HashMap::new(),
            two_hop: HashMap::new(),
            mprs: HashSet::new(),
            mpr_selectors: HashMap::new(),
            topology: HashMap::new(),
            origin_ansn: HashMap::new(),
            seen_tc: HashMap::new(),
            routes: HashMap::new(),
            tc_seq: 0,
            ansn: 0,
            last_selector_snapshot: Vec::new(),
        }
    }

    /// Current symmetric neighbours.
    pub fn symmetric_neighbours(&self, now: SimTime) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .links
            .iter()
            .filter(|(_, l)| l.is_sym(now))
            .map(|(&n, _)| n)
            .collect();
        v.sort();
        v
    }

    /// Currently selected MPRs.
    pub fn mpr_set(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.mprs.iter().copied().collect();
        v.sort();
        v
    }

    /// Current unexpired `(symmetric neighbour, two-hop node)` adjacency as
    /// learned from HELLOs — the input to MPR selection. Exposed so the
    /// testkit can check the MPR coverage property from outside.
    pub fn two_hop_pairs(&self, now: SimTime) -> Vec<(NodeId, NodeId)> {
        let mut v: Vec<(NodeId, NodeId)> = self
            .two_hop
            .iter()
            .filter(|(_, &exp)| exp > now)
            .map(|(&pair, _)| pair)
            .collect();
        v.sort();
        v
    }

    /// The computed route to `dst`, as `(next_hop, cost)`.
    pub fn route(&self, dst: NodeId) -> Option<(NodeId, f64)> {
        self.routes.get(&dst).copied()
    }

    /// Measured arrival rate (NI) for a neighbour over the LQ window.
    fn ni(&self, neighbour: NodeId, now: SimTime) -> f64 {
        let Some(link) = self.links.get(&neighbour) else {
            return 0.0;
        };
        let window = self.config.hello_interval * self.config.lq_window;
        let start = if now.as_nanos() > window.as_nanos() as u64 {
            SimTime::from_nanos(now.as_nanos() - window.as_nanos() as u64)
        } else {
            SimTime::ZERO
        };
        let received = link.hello_times.iter().filter(|&&t| t >= start).count();
        let expected = (now.saturating_since(start).as_secs_f64()
            / self.config.hello_interval.as_secs_f64())
        .max(1.0);
        (received as f64 / expected).min(1.0)
    }

    /// ETX cost of the direct link to `neighbour`.
    fn etx(&self, neighbour: NodeId, now: SimTime) -> f64 {
        let ni = self.ni(neighbour, now);
        let lqi = self.links.get(&neighbour).map_or(0.0, |l| l.lqi);
        if ni <= 0.0 || lqi <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / (ni * lqi)
        }
    }

    fn link_cost(&self, neighbour: NodeId, now: SimTime) -> f64 {
        match self.config.metric {
            LinkMetric::Hops => 1.0,
            LinkMetric::Etx => self.etx(neighbour, now),
        }
    }

    /// Remote link cost from a TC-advertised quality value.
    fn remote_cost(&self, lq: f64) -> f64 {
        match self.config.metric {
            LinkMetric::Hops => 1.0,
            LinkMetric::Etx => {
                if lq <= 0.0 {
                    f64::INFINITY
                } else {
                    (1.0 / lq).max(1.0)
                }
            }
        }
    }

    fn emit_hello(&mut self, api: &mut NodeApi<'_>) {
        let now = api.now();
        let me = api.id();
        let mut entries: Vec<HelloEntry> = self
            .links
            .iter()
            .filter(|(_, l)| l.is_heard(now))
            .map(|(&addr, l)| HelloEntry {
                addr,
                sym: l.is_sym(now),
                is_mpr: self.mprs.contains(&addr),
                lq: self.ni(addr, now),
            })
            .collect();
        entries.sort_by_key(|e| e.addr);
        let size = 16 + 8 * entries.len() as u32;
        let packet = Packet::control(me, NodeId::BROADCAST, size, Hello { entries });
        api.send(packet, NodeId::BROADCAST);
    }

    fn emit_tc(&mut self, api: &mut NodeApi<'_>) {
        let now = api.now();
        // Only nodes selected as MPR by someone generate TCs.
        self.mpr_selectors.retain(|_, &mut exp| exp > now);
        if self.mpr_selectors.is_empty() {
            return;
        }
        let mut selectors: Vec<NodeId> = self.mpr_selectors.keys().copied().collect();
        selectors.sort();
        if selectors != self.last_selector_snapshot {
            self.ansn = self.ansn.wrapping_add(1);
            self.last_selector_snapshot = selectors.clone();
        }
        self.tc_seq = self.tc_seq.wrapping_add(1);
        let tc = Tc {
            origin: api.id(),
            seq: self.tc_seq,
            ansn: self.ansn,
            selectors: selectors
                .into_iter()
                .map(|s| (s, self.ni(s, now)))
                .collect(),
        };
        let size = 16 + 8 * tc.selectors.len() as u32;
        let mut packet = Packet::control(api.id(), NodeId::BROADCAST, size, tc);
        packet.ttl = 32;
        api.send(packet, NodeId::BROADCAST);
    }

    fn handle_hello(&mut self, api: &mut NodeApi<'_>, hello: &Hello, from: NodeId) {
        let now = api.now();
        let me = api.id();
        let hold = self.config.neighb_hold;
        let window = self.config.hello_interval * self.config.lq_window;
        let link = self.links.entry(from).or_insert_with(LinkInfo::new);
        link.heard_until = now + hold;
        link.hello_times.push_back(now);
        while let Some(&t) = link.hello_times.front() {
            if now.saturating_since(t) > window {
                link.hello_times.pop_front();
            } else {
                break;
            }
        }
        let mut lists_me = None;
        for e in &hello.entries {
            if e.addr == me {
                lists_me = Some(*e);
            }
        }
        if let Some(e) = lists_me {
            // The neighbour hears us: the link is symmetric.
            link.sym_until = now + hold;
            link.lqi = e.lq.max(0.01);
            if e.is_mpr {
                self.mpr_selectors.insert(from, now + hold);
            } else {
                self.mpr_selectors.remove(&from);
            }
        }
        // Two-hop set: the sender's symmetric neighbours (except us).
        if self.links.get(&from).is_some_and(|l| l.is_sym(now)) {
            for e in &hello.entries {
                if e.sym && e.addr != me {
                    self.two_hop.insert((from, e.addr), now + hold);
                }
            }
        }
        self.recompute_mprs(now);
        self.recompute_routes(api);
    }

    fn handle_tc(&mut self, api: &mut NodeApi<'_>, packet: &Packet, tc: &Tc, from: NodeId) {
        let now = api.now();
        if tc.origin == api.id() {
            return;
        }
        // RFC 3626 §9.5: discard if the sender is not a symmetric neighbour.
        if !self.links.get(&from).is_some_and(|l| l.is_sym(now)) {
            return;
        }
        let dup_key = (tc.origin, tc.seq);
        if self.seen_tc.contains_key(&dup_key) {
            return;
        }
        self.seen_tc.insert(dup_key, now + Duration::from_secs(30));

        // ANSN handling: ignore stale, flush on newer.
        let process = match self.origin_ansn.get(&tc.origin) {
            Some(&have) => {
                let diff = tc.ansn.wrapping_sub(have) as i16;
                if diff < 0 {
                    false
                } else {
                    if diff > 0 {
                        self.topology.retain(|&(_, lh), _| lh != tc.origin);
                    }
                    true
                }
            }
            None => true,
        };
        if process {
            self.origin_ansn.insert(tc.origin, tc.ansn);
            for &(sel, lq) in &tc.selectors {
                if sel == api.id() {
                    continue;
                }
                self.topology
                    .insert((sel, tc.origin), (lq, now + self.config.top_hold));
            }
            self.recompute_routes(api);
        }

        // MPR flooding: forward only if the sender selected us as MPR.
        if self.mpr_selectors.contains_key(&from) && packet.ttl > 1 {
            let mut fwd = packet.clone();
            fwd.ttl -= 1;
            api.send(fwd, NodeId::BROADCAST);
        }
    }

    /// Greedy MPR selection (RFC 3626 §8.3.1 heuristic).
    fn recompute_mprs(&mut self, now: SimTime) {
        let neighbours: HashSet<NodeId> = self
            .links
            .iter()
            .filter(|(_, l)| l.is_sym(now))
            .map(|(&n, _)| n)
            .collect();
        // Strict two-hop set: reachable via a sym neighbour, not a neighbour
        // itself.
        self.two_hop.retain(|_, &mut exp| exp > now);
        let mut uncovered: HashSet<NodeId> = self
            .two_hop
            .keys()
            .filter(|(n, t)| neighbours.contains(n) && !neighbours.contains(t))
            .map(|&(_, t)| t)
            .collect();
        let coverage: HashMap<NodeId, HashSet<NodeId>> = neighbours
            .iter()
            .map(|&n| {
                let covers: HashSet<NodeId> = self
                    .two_hop
                    .keys()
                    .filter(|&&(nb, t)| nb == n && uncovered.contains(&t))
                    .map(|&(_, t)| t)
                    .collect();
                (n, covers)
            })
            .collect();
        let mut mprs = HashSet::new();
        // 1. Neighbours that are the sole cover of some two-hop node.
        for &t in uncovered.clone().iter() {
            let covers: Vec<NodeId> = coverage
                .iter()
                .filter(|(_, c)| c.contains(&t))
                .map(|(&n, _)| n)
                .collect();
            if covers.len() == 1 {
                mprs.insert(covers[0]);
            }
        }
        for m in &mprs {
            if let Some(c) = coverage.get(m) {
                for t in c {
                    uncovered.remove(t);
                }
            }
        }
        // 2. Greedy: repeatedly take the neighbour covering most uncovered.
        while !uncovered.is_empty() {
            let best = coverage
                .iter()
                .filter(|(n, _)| !mprs.contains(*n))
                .max_by_key(|(n, c)| {
                    (
                        c.iter().filter(|t| uncovered.contains(t)).count(),
                        // Deterministic tie-break by id.
                        std::cmp::Reverse(n.0),
                    )
                })
                .map(|(&n, _)| n);
            let Some(best) = best else { break };
            let gain: Vec<NodeId> = coverage[&best]
                .iter()
                .filter(|t| uncovered.contains(t))
                .copied()
                .collect();
            if gain.is_empty() {
                break;
            }
            mprs.insert(best);
            for t in gain {
                uncovered.remove(&t);
            }
        }
        self.mprs = mprs;
    }

    /// Dijkstra over HELLO links + TC topology.
    fn recompute_routes(&mut self, api: &mut NodeApi<'_>) {
        let now = api.now();
        let me = api.id();
        self.topology.retain(|_, &mut (_, exp)| exp > now);

        // Edge list: (from, to, cost).
        let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
        for (&n, l) in &self.links {
            if l.is_sym(now) {
                edges.push((me, n, self.link_cost(n, now)));
            }
        }
        for (&(n, t), &exp) in &self.two_hop {
            if exp > now {
                edges.push((n, t, 1.0));
            }
        }
        for (&(dest, lasthop), &(lq, _)) in &self.topology {
            edges.push((lasthop, dest, self.remote_cost(lq)));
        }
        // The edge list is assembled from HashMaps, so its order is
        // per-process random; equal-cost relaxations below resolve by edge
        // order, which must not leak into next-hop choice.
        edges.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.total_cmp(&b.2)));

        // Dijkstra with a simple scan (graphs are tiny).
        let mut dist: HashMap<NodeId, f64> = HashMap::new();
        let mut first_hop: HashMap<NodeId, NodeId> = HashMap::new();
        let mut done: HashSet<NodeId> = HashSet::new();
        dist.insert(me, 0.0);
        loop {
            let next = dist
                .iter()
                .filter(|(n, _)| !done.contains(*n))
                .min_by(|a, b| a.1.total_cmp(b.1).then_with(|| a.0.cmp(b.0)))
                .map(|(&n, &d)| (n, d));
            let Some((u, du)) = next else { break };
            done.insert(u);
            for &(from, to, cost) in &edges {
                if from != u || cost.is_infinite() {
                    continue;
                }
                let nd = du + cost;
                if dist.get(&to).is_none_or(|&old| nd < old - 1e-12) {
                    dist.insert(to, nd);
                    let fh = if u == me {
                        to
                    } else {
                        first_hop.get(&u).copied().unwrap_or(u)
                    };
                    first_hop.insert(to, fh);
                }
            }
        }
        self.routes = dist
            .into_iter()
            .filter(|&(n, _)| n != me)
            .filter_map(|(n, d)| first_hop.get(&n).map(|&fh| (n, (fh, d))))
            .collect();
    }

    fn tick(&mut self, api: &mut NodeApi<'_>) {
        let now = api.now();
        self.seen_tc.retain(|_, &mut exp| exp > now);
        self.links
            .retain(|_, l| l.is_heard(now) || !l.hello_times.is_empty());
        self.recompute_mprs(now);
        self.recompute_routes(api);
    }
}

/// Serializer for OLSR's in-flight control payloads (HELLO and TC). The
/// tag bytes are part of the checkpoint format and fixed forever.
#[derive(Debug, Clone, Copy, Default)]
pub struct OlsrCodec;

const CTRL_HELLO: u8 = 1;
const CTRL_TC: u8 = 2;

impl ControlCodec for OlsrCodec {
    fn encode(&self, blob: &ControlBlob, w: &mut WireWriter) -> Result<(), WireError> {
        if let Some(h) = blob.downcast_ref::<Hello>() {
            w.put_u8(CTRL_HELLO);
            w.put_usize(h.entries.len());
            for e in &h.entries {
                write_node_id(w, e.addr);
                w.put_bool(e.sym);
                w.put_bool(e.is_mpr);
                w.put_f64(e.lq);
            }
            return Ok(());
        }
        if let Some(tc) = blob.downcast_ref::<Tc>() {
            w.put_u8(CTRL_TC);
            write_node_id(w, tc.origin);
            w.put_u32(tc.seq);
            w.put_u16(tc.ansn);
            w.put_usize(tc.selectors.len());
            for &(sel, lq) in &tc.selectors {
                write_node_id(w, sel);
                w.put_f64(lq);
            }
            return Ok(());
        }
        Err(WireError::Malformed {
            what: "non-OLSR control payload",
            value: 0,
        })
    }

    fn decode(&self, r: &mut WireReader<'_>) -> Result<ControlBlob, WireError> {
        match r.get_u8()? {
            CTRL_HELLO => {
                let n = r.get_usize()?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(HelloEntry {
                        addr: read_node_id(r)?,
                        sym: r.get_bool()?,
                        is_mpr: r.get_bool()?,
                        lq: r.get_f64()?,
                    });
                }
                Ok(std::sync::Arc::new(Hello { entries }))
            }
            CTRL_TC => {
                let origin = read_node_id(r)?;
                let seq = r.get_u32()?;
                let ansn = r.get_u16()?;
                let n = r.get_usize()?;
                let mut selectors = Vec::with_capacity(n);
                for _ in 0..n {
                    selectors.push((read_node_id(r)?, r.get_f64()?));
                }
                Ok(std::sync::Arc::new(Tc {
                    origin,
                    seq,
                    ansn,
                    selectors,
                }))
            }
            tag => Err(WireError::Malformed {
                what: "olsr control tag",
                value: u64::from(tag),
            }),
        }
    }
}

impl RoutingProtocol for Olsr {
    fn name(&self) -> &'static str {
        "olsr"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn telemetry(&self) -> RoutingTelemetry {
        RoutingTelemetry {
            route_table_size: self.routes.len() as u64,
            neighbours: self.links.len() as u64,
            mpr_set_size: self.mprs.len() as u64,
            ..RoutingTelemetry::default()
        }
    }

    fn on_crash(&mut self, _api: &mut NodeApi<'_>) {
        // OLSR never buffers data (no route means an immediate NoRoute
        // drop), so a crash surrenders nothing. Link-state tables need no
        // cleanup either: a cold-start recovery replaces the instance, and
        // a warm start deliberately keeps the stale topology — neighbours
        // expire it through the usual HELLO/TC hold timers.
    }

    fn start(&mut self, api: &mut NodeApi<'_>) {
        let jitter = Duration::from_millis(api.rng().gen_range(0..250));
        api.schedule(Duration::from_millis(100) + jitter, TOKEN_HELLO);
        api.schedule(self.config.tc_interval / 2 + jitter, TOKEN_TC);
        api.schedule(TICK + jitter, TOKEN_TICK);
    }

    fn route_output(&mut self, api: &mut NodeApi<'_>, packet: Packet) {
        if packet.dst.is_broadcast() {
            api.send(packet, NodeId::BROADCAST);
            return;
        }
        if let Some(&(nh, _)) = self.routes.get(&packet.dst) {
            api.send(packet, nh);
        } else {
            // Proactive protocol: no route means drop (no buffering).
            api.drop_packet(packet, DropReason::NoRoute);
        }
    }

    fn handle_received(&mut self, api: &mut NodeApi<'_>, mut packet: Packet, from: NodeId) {
        if let Some(hello) = packet.body.as_control::<Hello>() {
            let hello = hello.clone();
            self.handle_hello(api, &hello, from);
            return;
        }
        if let Some(tc) = packet.body.as_control::<Tc>() {
            let tc = tc.clone();
            self.handle_tc(api, &packet, &tc, from);
            return;
        }
        // Data.
        if packet.dst == api.id() {
            api.deliver_to_app(packet);
            return;
        }
        if packet.ttl <= 1 {
            api.drop_packet(packet, DropReason::TtlExpired);
            return;
        }
        packet.ttl -= 1;
        if let Some(&(nh, _)) = self.routes.get(&packet.dst) {
            api.send(packet, nh);
        } else {
            api.drop_packet(packet, DropReason::NoRoute);
        }
    }

    fn handle_timer(&mut self, api: &mut NodeApi<'_>, token: u64) {
        match token {
            TOKEN_HELLO => {
                self.emit_hello(api);
                let jitter = Duration::from_millis(api.rng().gen_range(0..100));
                api.schedule(
                    self.config.hello_interval - Duration::from_millis(50) + jitter,
                    TOKEN_HELLO,
                );
            }
            TOKEN_TC => {
                self.emit_tc(api);
                let jitter = Duration::from_millis(api.rng().gen_range(0..100));
                api.schedule(
                    self.config.tc_interval - Duration::from_millis(50) + jitter,
                    TOKEN_TC,
                );
            }
            TOKEN_TICK => {
                self.tick(api);
                api.schedule(TICK, TOKEN_TICK);
            }
            _ => {}
        }
    }

    fn capture_state(&self, w: &mut WireWriter) -> Result<(), WireError> {
        // Every map is serialized in sorted key order so the stream is
        // independent of HashMap iteration order.
        let mut link_ids: Vec<NodeId> = self.links.keys().copied().collect();
        link_ids.sort_by_key(|n| n.0);
        w.put_usize(link_ids.len());
        for n in link_ids {
            let l = &self.links[&n];
            write_node_id(w, n);
            write_time(w, l.heard_until);
            write_time(w, l.sym_until);
            w.put_usize(l.hello_times.len());
            for &t in &l.hello_times {
                write_time(w, t);
            }
            w.put_f64(l.lqi);
        }

        let mut two_hop: Vec<(NodeId, NodeId)> = self.two_hop.keys().copied().collect();
        two_hop.sort_by_key(|&(a, b)| (a.0, b.0));
        w.put_usize(two_hop.len());
        for key in two_hop {
            write_node_id(w, key.0);
            write_node_id(w, key.1);
            write_time(w, self.two_hop[&key]);
        }

        let mut mprs: Vec<NodeId> = self.mprs.iter().copied().collect();
        mprs.sort_by_key(|n| n.0);
        w.put_usize(mprs.len());
        for n in mprs {
            write_node_id(w, n);
        }

        let mut selectors: Vec<NodeId> = self.mpr_selectors.keys().copied().collect();
        selectors.sort_by_key(|n| n.0);
        w.put_usize(selectors.len());
        for n in selectors {
            write_node_id(w, n);
            write_time(w, self.mpr_selectors[&n]);
        }

        let mut topo: Vec<(NodeId, NodeId)> = self.topology.keys().copied().collect();
        topo.sort_by_key(|&(a, b)| (a.0, b.0));
        w.put_usize(topo.len());
        for key in topo {
            let (lq, exp) = self.topology[&key];
            write_node_id(w, key.0);
            write_node_id(w, key.1);
            w.put_f64(lq);
            write_time(w, exp);
        }

        let mut ansns: Vec<NodeId> = self.origin_ansn.keys().copied().collect();
        ansns.sort_by_key(|n| n.0);
        w.put_usize(ansns.len());
        for n in ansns {
            write_node_id(w, n);
            w.put_u16(self.origin_ansn[&n]);
        }

        let mut seen: Vec<(NodeId, u32)> = self.seen_tc.keys().copied().collect();
        seen.sort_by_key(|&(n, s)| (n.0, s));
        w.put_usize(seen.len());
        for key in seen {
            write_node_id(w, key.0);
            w.put_u32(key.1);
            write_time(w, self.seen_tc[&key]);
        }

        let mut routes: Vec<NodeId> = self.routes.keys().copied().collect();
        routes.sort_by_key(|n| n.0);
        w.put_usize(routes.len());
        for n in routes {
            let (nh, cost) = self.routes[&n];
            write_node_id(w, n);
            write_node_id(w, nh);
            w.put_f64(cost);
        }

        w.put_u32(self.tc_seq);
        w.put_u16(self.ansn);
        w.put_usize(self.last_selector_snapshot.len());
        for &n in &self.last_selector_snapshot {
            write_node_id(w, n);
        }
        Ok(())
    }

    fn restore_state(&mut self, r: &mut WireReader<'_>) -> Result<(), WireError> {
        self.links.clear();
        for _ in 0..r.get_usize()? {
            let n = read_node_id(r)?;
            let heard_until = read_time(r)?;
            let sym_until = read_time(r)?;
            let times = r.get_usize()?;
            let mut hello_times = VecDeque::with_capacity(times);
            for _ in 0..times {
                hello_times.push_back(read_time(r)?);
            }
            let lqi = r.get_f64()?;
            self.links.insert(
                n,
                LinkInfo {
                    heard_until,
                    sym_until,
                    hello_times,
                    lqi,
                },
            );
        }

        self.two_hop.clear();
        for _ in 0..r.get_usize()? {
            let key = (read_node_id(r)?, read_node_id(r)?);
            self.two_hop.insert(key, read_time(r)?);
        }

        self.mprs.clear();
        for _ in 0..r.get_usize()? {
            self.mprs.insert(read_node_id(r)?);
        }

        self.mpr_selectors.clear();
        for _ in 0..r.get_usize()? {
            let n = read_node_id(r)?;
            self.mpr_selectors.insert(n, read_time(r)?);
        }

        self.topology.clear();
        for _ in 0..r.get_usize()? {
            let key = (read_node_id(r)?, read_node_id(r)?);
            let lq = r.get_f64()?;
            let exp = read_time(r)?;
            self.topology.insert(key, (lq, exp));
        }

        self.origin_ansn.clear();
        for _ in 0..r.get_usize()? {
            let n = read_node_id(r)?;
            self.origin_ansn.insert(n, r.get_u16()?);
        }

        self.seen_tc.clear();
        for _ in 0..r.get_usize()? {
            let key = (read_node_id(r)?, r.get_u32()?);
            self.seen_tc.insert(key, read_time(r)?);
        }

        self.routes.clear();
        for _ in 0..r.get_usize()? {
            let n = read_node_id(r)?;
            let nh = read_node_id(r)?;
            let cost = r.get_f64()?;
            self.routes.insert(n, (nh, cost));
        }

        self.tc_seq = r.get_u32()?;
        self.ansn = r.get_u16()?;
        self.last_selector_snapshot.clear();
        for _ in 0..r.get_usize()? {
            self.last_selector_snapshot.push(read_node_id(r)?);
        }
        Ok(())
    }

    fn control_codec(&self) -> Option<Box<dyn ControlCodec>> {
        Some(Box::new(OlsrCodec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_line, run_ring};

    #[test]
    fn name() {
        assert_eq!(Olsr::new().name(), "olsr");
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        crate::testutil::assert_snapshot_round_trip(4, |_| Box::new(Olsr::new()), 8.0, 7);
    }

    #[test]
    fn etx_snapshot_round_trip_is_bit_identical() {
        crate::testutil::assert_snapshot_round_trip(3, |_| Box::new(Olsr::new_etx()), 8.0, 9);
    }

    #[test]
    fn codec_round_trips_every_control_message() {
        let codec = OlsrCodec;
        let blobs: Vec<cavenet_net::ControlBlob> = vec![
            std::sync::Arc::new(Hello {
                entries: vec![
                    HelloEntry {
                        addr: NodeId(1),
                        sym: true,
                        is_mpr: false,
                        lq: 0.875,
                    },
                    HelloEntry {
                        addr: NodeId(2),
                        sym: false,
                        is_mpr: true,
                        lq: 1.0,
                    },
                ],
            }),
            std::sync::Arc::new(Tc {
                origin: NodeId(4),
                seq: 17,
                ansn: 3,
                selectors: vec![(NodeId(1), 0.5), (NodeId(9), 1.0)],
            }),
        ];
        for blob in blobs {
            let mut w = WireWriter::new();
            codec.encode(&blob, &mut w).expect("encode");
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            let decoded = codec.decode(&mut r).expect("decode");
            r.finish().expect("whole stream consumed");
            let mut w2 = WireWriter::new();
            codec.encode(&decoded, &mut w2).expect("re-encode");
            assert_eq!(bytes, w2.into_bytes(), "codec round trip not stable");
        }
        let foreign: cavenet_net::ControlBlob = std::sync::Arc::new(1u8);
        assert!(matches!(
            codec.encode(&foreign, &mut WireWriter::new()),
            Err(WireError::Malformed { .. })
        ));
        let mut bad = WireReader::new(&[0x33]);
        assert!(matches!(
            codec.decode(&mut bad),
            Err(WireError::Malformed {
                what: "olsr control tag",
                ..
            })
        ));
    }

    #[test]
    fn single_hop_delivery_after_convergence() {
        // Link sensing takes 2–3 HELLO rounds; packets sent before that are
        // dropped (no buffering in a proactive protocol). Send 30 packets
        // over 6 s so most fall after convergence.
        let (log, _) = run_line(2, 200.0, |_| Box::new(Olsr::new()), 0, 1, 30, 10.0, 1);
        let got = log.borrow().received.len();
        assert!(got >= 20, "OLSR single hop should deliver, got {got}/30");
    }

    #[test]
    fn multi_hop_delivery_via_tc() {
        // 4 hops needs TC dissemination, not just hellos: allow several TC
        // rounds of convergence time.
        let (log, _) = run_line(5, 200.0, |_| Box::new(Olsr::new()), 0, 4, 40, 30.0, 2);
        let got = log.borrow().received.len();
        assert!(got >= 20, "OLSR multi-hop delivery too low: {got}/40");
    }

    #[test]
    fn ring_delivery() {
        let (log, _) = run_ring(30, 3000.0, |_| Box::new(Olsr::new()), 5, 0, 40, 40.0, 3);
        let got = log.borrow().received.len();
        assert!(got >= 10, "OLSR ring delivery too low: {got}/40");
    }

    #[test]
    fn early_packets_lost_before_convergence() {
        // Source starts at 0.5 s — before topology has converged over TC.
        // On a 4-hop chain the very first packets are typically dropped
        // (no route yet): the behaviour the paper's Fig. 9 shows as OLSR's
        // late goodput onset.
        let (log, _) = run_line(5, 200.0, |_| Box::new(Olsr::new()), 0, 4, 10, 20.0, 4);
        let log = log.borrow();
        if let Some(&(first_seq, _)) = log.received.first() {
            assert!(
                first_seq > 0,
                "expected the first packet(s) to be lost pre-convergence"
            );
        }
    }

    #[test]
    fn mpr_set_is_minimal_on_chain() {
        // Behavioural proxy: in a 3-node chain the middle node must relay
        // TCs (it is the only possible MPR), so end nodes learn each other.
        let (log, sim) = run_line(3, 200.0, |_| Box::new(Olsr::new()), 0, 2, 20, 20.0, 5);
        let got = log.borrow().received.len();
        assert!(got >= 10, "chain delivery too low: {got}/20");
        assert!(sim.node_stats(1).data_forwarded >= got as u64);
    }

    #[test]
    fn etx_variant_works() {
        let (log, _) = run_line(3, 200.0, |_| Box::new(Olsr::new_etx()), 0, 2, 30, 25.0, 6);
        let got = log.borrow().received.len();
        assert!(got >= 15, "ETX OLSR should deliver, got {got}/30");
    }

    #[test]
    fn no_route_drops_instead_of_buffering() {
        // Partitioned destination: packets are silently dropped (proactive
        // protocols do not buffer), and never delivered.
        let mobility =
            cavenet_net::StaticMobility::new(vec![(0.0, 0.0), (200.0, 0.0), (5000.0, 0.0)]);
        let (log, _) = crate::testutil::run_with_mobility(
            mobility,
            3,
            |_| Box::new(Olsr::new()),
            0,
            2,
            5,
            15.0,
            7,
        );
        assert_eq!(log.borrow().received.len(), 0);
    }

    #[test]
    fn control_overhead_is_periodic() {
        let (_, sim) = run_line(3, 200.0, |_| Box::new(Olsr::new()), 0, 2, 0, 10.0, 8);
        // ≈10 hellos per node plus TCs from the MPR (middle node).
        let hello_ish = sim.node_stats(0).control_sent;
        assert!((8..=30).contains(&hello_ish), "got {hello_ish}");
        let middle = sim.node_stats(1).control_sent;
        assert!(middle >= hello_ish, "the MPR node also sends TCs");
    }

    #[test]
    fn default_config_matches_table1() {
        let c = OlsrConfig::default();
        assert_eq!(c.hello_interval, Duration::from_secs(1));
        assert_eq!(c.tc_interval, Duration::from_secs(2));
    }

    #[test]
    fn crashed_mpr_is_dropped_and_reelected_after_recovery() {
        // 0-1-2 chain: node 1 is the only possible MPR for both ends. It
        // crashes at 6 s (well after convergence) and recovers at 12 s.
        // Node 0 must age the dead neighbour out within neighb_hold (3 s)
        // and recompute an empty MPR set; after recovery the HELLO
        // exchange must re-elect node 1.
        use cavenet_net::{FaultPlan, ScenarioConfig, Simulator, StaticMobility};

        let mut sim = Simulator::builder(ScenarioConfig::default())
            .nodes(3)
            .seed(2)
            .mobility(Box::new(StaticMobility::line(3, 200.0)))
            .fault_plan(
                FaultPlan::new()
                    .crash(SimTime::from_secs(6), 1)
                    .recover(SimTime::from_secs(12), 1),
            )
            .routing_with(|_| Box::new(Olsr::new()))
            .build();
        let olsr_of = |sim: &Simulator, node: usize| -> Vec<NodeId> {
            sim.routing(node)
                .expect("routing attached")
                .as_any()
                .expect("OLSR opts into downcasting")
                .downcast_ref::<Olsr>()
                .expect("protocol is OLSR")
                .mpr_set()
        };
        sim.run_until_secs(5.0);
        assert_eq!(
            olsr_of(&sim, 0),
            vec![NodeId(1)],
            "converged chain must elect the middle node"
        );
        sim.run_until_secs(11.0);
        assert!(
            olsr_of(&sim, 0).is_empty(),
            "dead MPR must age out and the set be recomputed"
        );
        assert!(olsr_of(&sim, 2).is_empty());
        sim.run_until_secs(18.0);
        assert_eq!(
            olsr_of(&sim, 0),
            vec![NodeId(1)],
            "recovered node must be re-elected as MPR"
        );
        assert_eq!(olsr_of(&sim, 2), vec![NodeId(1)]);
    }

    #[test]
    fn mpr_set_covers_every_strict_two_hop_neighbour() {
        // RFC 3626 §8.3.1: the MPR set of a node must reach every strict
        // two-hop neighbour. Ring of 10 nodes, 2000 m circumference: each
        // node hears exactly its two ring neighbours (200 m arc ≈ 198 m
        // chord < 250 m range; the two-hop chord ≈ 391 m is out of range),
        // so both ring neighbours must be selected as MPRs.
        let (_, sim) = run_ring(10, 2000.0, |_| Box::new(Olsr::new()), 0, 5, 0, 10.0, 4);
        let now = sim.now();
        for i in 0..10 {
            let olsr = sim
                .routing(i)
                .expect("routing attached")
                .as_any()
                .expect("OLSR opts into downcasting")
                .downcast_ref::<Olsr>()
                .expect("protocol is OLSR");
            let neighbours = olsr.symmetric_neighbours(now);
            assert_eq!(neighbours.len(), 2, "node {i}: ring neighbours");
            let mprs = olsr.mpr_set();
            assert!(!mprs.is_empty(), "node {i}: no MPRs despite two-hop nodes");
            // Coverage property: every strict two-hop node is reachable
            // through at least one selected MPR.
            let me = NodeId(i as u32);
            let strict: Vec<NodeId> = olsr
                .two_hop_pairs(now)
                .iter()
                .filter(|(_, t)| *t != me && !neighbours.contains(t))
                .map(|&(_, t)| t)
                .collect();
            assert!(!strict.is_empty(), "node {i}: ring must have two-hop nodes");
            for t in strict {
                let covered = olsr
                    .two_hop_pairs(now)
                    .iter()
                    .any(|&(n, t2)| t2 == t && mprs.contains(&n));
                assert!(covered, "node {i}: two-hop node {} uncovered by MPRs", t.0);
            }
        }
    }
}
